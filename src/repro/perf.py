"""Always-on kernel performance counters and opt-in profiling.

Two layers, matching how the paper's experiments are actually debugged:

- :class:`KernelPerf` -- near-zero-overhead per-subsystem counters that
  every simulation run collects for free.  All of them are *already
  maintained* by the hot paths (the scheduler's insertion sequence, the
  channel's :class:`~repro.phy.channel.ChannelStats`, each MAC's
  :class:`~repro.mac.csma.MacStats`, each host's position-memo hit/miss
  pair, each :class:`~repro.net.neighbors.NeighborTable`'s update/expiry
  tallies); :meth:`KernelPerf.collect` merely reads them out once at the
  end of a run, so the simulation itself pays nothing beyond the integer
  bumps it was doing anyway.
- :func:`profiled` / :func:`format_profile` -- an opt-in ``cProfile``
  wrapper behind the CLI's ``--profile [N]`` flag, for when the counters
  say *what* is slow and you need to know *where*.

Counter semantics
-----------------
``events_scheduled`` counts every event ever pushed on the heap;
``events_processed`` counts the callbacks that actually ran;
``events_cancelled`` the events withdrawn before firing (MAC backoff
freezes, scheme S5 inhibits); ``heap_compactions`` how many times the
scheduler reclaimed cancelled husks in bulk.
``events_pending_final``/``cancelled_pending_final`` are the heap residue
(entries left on the heap, and how many of those are cancelled husks) when
the run ended -- including runs that quiesce early under faults -- closing
the disposition invariant ``scheduled == processed + cancelled +
(pending_final - cancelled_pending_final)``.  ``pos_hits``/``pos_misses``
describe position reads: under the scalar kernel the per-host per-instant
memo (a hit returns the tuple cached at the current timestamp, a miss
evaluates the mobility model); under the vector kernel the
:class:`~repro.mobility.store.PositionStore` epoch cache (a miss is a
batched all-host evaluation or a lazy single-host read).
``pos_batch_evals`` counts those batched evaluations (vector only), and
``batch_scans``/``vector_candidates`` the vectorized receiver scans and
the total in-range ids they produced.
``hello_updates``/``neighbor_expirations`` count HELLO-driven neighbor
table writes and lazy-heap expiries.  Channel and MAC counters mirror the
fields of the same name on ``ChannelStats`` / ``MacStats`` (MAC counters
are summed across hosts).
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from typing import Any, Dict, Iterator

__all__ = ["KernelPerf", "profiled", "format_profile"]


class KernelPerf:
    """Per-subsystem kernel counters for one simulation run."""

    __slots__ = (
        # scheduler
        "events_scheduled", "events_processed", "events_cancelled",
        "heap_compactions", "events_pending_final", "cancelled_pending_final",
        # channel
        "transmissions", "deliveries", "collisions", "deaf_misses",
        "grid_rebuilds", "batch_scans", "vector_candidates",
        # MAC (summed across hosts)
        "frames_sent", "frames_received", "frames_corrupted",
        "backoffs_started",
        # position reads: per-host memo (scalar kernel) or PositionStore
        # epoch cache (vector kernel)
        "pos_hits", "pos_misses", "pos_batch_evals",
        # HELLO / neighbor bookkeeping
        "hello_updates", "neighbor_expirations",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    # ------------------------------------------------------------ build

    @classmethod
    def collect(cls, scheduler: Any, network: Any) -> "KernelPerf":
        """Read the counters the kernel maintained during a run.

        ``scheduler`` is the run's :class:`~repro.sim.engine.Scheduler`;
        ``network`` the :class:`~repro.net.network.Network` (its channel,
        hosts, MACs and neighbor tables are walked once).
        """
        perf = cls()
        perf.events_scheduled = scheduler.events_scheduled
        perf.events_processed = scheduler.events_processed
        perf.events_cancelled = scheduler.events_cancelled
        perf.heap_compactions = scheduler.compactions
        # Heap residue at collection time.  A run that quiesces early (e.g.
        # every host crashed) still reports these: collect() runs after
        # Scheduler.run() returns regardless of why the heap drained, so
        # events_scheduled == events_processed + events_cancelled
        #                     + (events_pending_final - cancelled_pending_final)
        # holds as the disposition invariant for every run.
        perf.events_pending_final = scheduler.pending
        perf.cancelled_pending_final = scheduler.cancelled_pending

        # Vector kernel: fold array-accumulated tallies (per-host rx
        # airtime, MAC corrupted counts) into their scalar-form homes
        # before reading anything.  Idempotent; no-op on scalar.
        finalize = getattr(network.channel, "finalize_vector_stats", None)
        if finalize is not None:
            finalize()

        ch = network.channel.stats
        perf.transmissions = ch.transmissions
        perf.deliveries = ch.deliveries
        perf.collisions = ch.collisions
        perf.deaf_misses = ch.deaf_misses
        perf.grid_rebuilds = ch.grid_rebuilds
        perf.batch_scans = ch.batch_scans
        perf.vector_candidates = ch.vector_candidates

        frames_sent = frames_received = frames_corrupted = 0
        backoffs = pos_hits = pos_misses = 0
        hello_updates = expirations = 0
        # Vector kernel: the PositionStore subsumes the per-host memo, so
        # its epoch cache reports through the same hit/miss pair (a miss is
        # any query that had to evaluate mobility -- a batched epoch or a
        # lazy single-host read).  The per-host tallies accumulated below
        # are all zero in that mode, so the two accountings never mix.
        store = getattr(network, "position_store", None)
        if store is not None:
            pos_hits = store.epoch_hits
            pos_misses = store.batch_evals + store.lazy_reads
            perf.pos_batch_evals = store.batch_evals
        for host in network.hosts:
            mac = host.mac.stats
            frames_sent += mac.frames_sent
            frames_received += mac.frames_received
            frames_corrupted += mac.frames_corrupted
            backoffs += mac.backoffs_started
            pos_hits += host.pos_hits
            pos_misses += host.pos_misses  # all zero under the vector kernel
            table = host.neighbor_table
            hello_updates += table.hello_updates
            expirations += table.expirations
        perf.frames_sent = frames_sent
        perf.frames_received = frames_received
        perf.frames_corrupted = frames_corrupted
        perf.backoffs_started = backoffs
        perf.pos_hits = pos_hits
        perf.pos_misses = pos_misses
        perf.hello_updates = hello_updates
        perf.neighbor_expirations = expirations
        return perf

    # ------------------------------------------------------------- ops

    def merge(self, other: "KernelPerf") -> "KernelPerf":
        """Add ``other``'s counters into this one (aggregation across
        runs); returns ``self`` for chaining."""
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    @property
    def pos_hit_rate(self) -> float:
        """Position-memo hits over all position queries (0.0 if none)."""
        queries = self.pos_hits + self.pos_misses
        return self.pos_hits / queries if queries else 0.0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KernelPerf):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in self.__slots__
        )

    __hash__ = None  # mutable counters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{name}={getattr(self, name)}" for name in self.__slots__
        )
        return f"KernelPerf({fields})"


@contextmanager
def profiled() -> Iterator[cProfile.Profile]:
    """Profile the ``with`` body; yields the (enabled) profile object.

    The profile is disabled on exit and can be rendered with
    :func:`format_profile`::

        with profiled() as prof:
            run_broadcast_simulation(config)
        print(format_profile(prof, top_n=25))
    """
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield profile
    finally:
        profile.disable()


def format_profile(profile: cProfile.Profile, top_n: int = 25) -> str:
    """Render the ``top_n`` functions by cumulative then internal time."""
    if top_n < 1:
        raise ValueError(f"top_n must be >= 1, got {top_n}")
    buffer = io.StringIO()
    stats = pstats.Stats(profile, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top_n)
    stats.sort_stats("tottime").print_stats(top_n)
    return buffer.getvalue()
