"""Terminal visualization of experiment results (no plotting deps).

ASCII charts good enough to eyeball the paper's figure shapes straight from
the CLI::

    repro-manet figure fig07 --chart
"""

from repro.viz.ascii_chart import bar_chart, line_chart, sparkline

__all__ = ["sparkline", "line_chart", "bar_chart"]
