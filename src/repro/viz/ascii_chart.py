"""Pure-text charts: sparklines, line/scatter charts, bar charts."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["sparkline", "line_chart", "bar_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_SERIES_MARKS = "ox*+#@%&"


def _finite(values: Sequence[float]) -> List[float]:
    return [v for v in values if not (math.isnan(v) or math.isinf(v))]


def sparkline(values: Sequence[float]) -> str:
    """One-line bar-density rendering of a numeric series.

    NaN/inf render as spaces.  A constant series renders mid-level.
    """
    finite = _finite(values)
    if not finite:
        return " " * len(values)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for value in values:
        if math.isnan(value) or math.isinf(value):
            chars.append(" ")
        elif span == 0:
            chars.append(_SPARK_LEVELS[len(_SPARK_LEVELS) // 2])
        else:
            index = int((value - lo) / span * (len(_SPARK_LEVELS) - 1))
            chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    max_value: Optional[float] = None,
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels but {len(values)} values"
        )
    finite = _finite(values)
    top = max_value if max_value is not None else (max(finite) if finite else 1.0)
    if top <= 0:
        top = 1.0
    label_width = max((len(l) for l in labels), default=0)
    lines = []
    for label, value in zip(labels, values):
        if math.isnan(value):
            bar, shown = "", "nan"
        else:
            bar = "#" * max(0, min(width, round(value / top * width)))
            shown = f"{value:.3f}"
        lines.append(f"{label:<{label_width}} |{bar:<{width}} {shown}")
    return "\n".join(lines)


def line_chart(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Multi-series scatter chart on a character grid with a legend.

    Each series gets a distinct mark; overlapping points show the later
    series' mark.  X positions are scaled by value (not by rank), so
    uneven sweeps (1, 5, 9) land where they should.
    """
    if not series:
        raise ValueError("no series to plot")
    points = [
        (x, y)
        for pts in series.values()
        for x, y in pts
        if not (math.isnan(y) or math.isinf(y))
    ]
    if not points:
        raise ValueError("no finite points to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    if y_range is not None:
        y_lo, y_hi = y_range
    else:
        y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        mark = _SERIES_MARKS[index % len(_SERIES_MARKS)]
        for x, y in pts:
            if math.isnan(y) or math.isinf(y):
                continue
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            row = max(0, min(height - 1, row))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>8.3f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row))
    lines.append(f"{y_lo:>8.3f} +" + "-" * width)
    lines.append(f"{'':9} {x_lo:<10g}{'':^{max(0, width - 20)}}{x_hi:>10g}")
    legend = "   ".join(
        f"{_SERIES_MARKS[i % len(_SERIES_MARKS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append("  " + legend)
    return "\n".join(lines)
