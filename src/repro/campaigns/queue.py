"""Work-queue campaign executor with checkpointed crash-resume.

The executor walks a :class:`~repro.campaigns.planner.CampaignPlan` in
checkpoint-sized chunks through a
:class:`~repro.experiments.parallel.ParallelRunner`.  Every chunk
boundary is a durability point: finished runs are appended to the JSONL
checkpoint (fsync'd) and the manifest is atomically rewritten.  Because
each run's result also lands in the SHA-256
:class:`~repro.experiments.parallel.ResultCache` the instant it
finishes, resume is trivial and exact:

1. re-expand the spec (deterministic ids),
2. replay the checkpoint to see how far the campaign got,
3. run the plan again -- completed digests come back as cache hits
   (zero re-simulation), holes actually execute.

Interrupts (Ctrl-C, SIGTERM via the CLI handler) surface as
:class:`~repro.experiments.parallel.ExecutionInterrupted`; the executor
flushes what finished and returns an ``interrupted`` outcome instead of
tearing down mid-write.

The completed campaign's deterministic payload (per-run metrics and the
per-grid-point aggregate; no wall-clock noise) is written to
``results.json`` -- an interrupted-then-resumed campaign produces a
byte-identical file to an uninterrupted one.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.campaigns.checkpoint import (
    CheckpointRecord,
    CheckpointWriter,
    load_manifest,
    load_records,
    write_manifest,
)
from repro.campaigns.planner import CampaignPlan, PlannedRun
from repro.experiments.parallel import (
    ExecutionInterrupted,
    ParallelRunner,
    RunnerPerf,
)
from repro.experiments.replication import MetricEstimate, aggregate
from repro.experiments.runner import SimulationResult
from repro.telemetry.registry import registry as telemetry_registry
from repro.telemetry.resources import ResourceProfile

__all__ = [
    "CampaignExecutor",
    "CampaignMismatch",
    "CampaignOutcome",
    "campaign_results_payload",
    "campaign_status",
]

MANIFEST_NAME = "manifest.json"
PROGRESS_NAME = "progress.jsonl"
RESULTS_NAME = "results.json"

#: Chunk latency buckets (seconds): chunks batch many runs, so they run
#: well past the default per-request duration buckets.
CHUNK_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)


class CampaignMismatch(RuntimeError):
    """The directory belongs to a different campaign (changed spec)."""


@dataclass
class CampaignOutcome:
    """What one ``CampaignExecutor.run()`` session produced."""

    plan: CampaignPlan
    directory: Path
    status: str  # "complete" | "interrupted"
    #: Aligned with ``plan.runs``; ``None`` where a run never finished
    #: this session (only possible when interrupted).
    results: List[Optional[SimulationResult]]
    perf: RunnerPerf

    @property
    def completed(self) -> int:
        return sum(1 for r in self.results if r is not None)

    @property
    def resumable(self) -> bool:
        return self.status == "interrupted"


def _estimate_to_dict(est: Optional[MetricEstimate]) -> Optional[Dict[str, Any]]:
    if est is None:
        return None
    return {
        "mean": est.mean,
        "half_width": est.half_width,
        "confidence": est.confidence,
        "samples": est.samples,
    }


def campaign_results_payload(
    plan: CampaignPlan,
    results: List[Optional[SimulationResult]],
    include_resources: bool = False,
) -> Dict[str, Any]:
    """The campaign's deterministic result document.

    Contains only seed-deterministic quantities (metrics, counters,
    fault traces, aggregates) -- no wall times, no cache provenance --
    so an interrupted+resumed campaign serializes byte-identically to an
    uninterrupted one.  Runs that never finished are listed under
    ``"missing"`` rather than silently dropped.

    ``include_resources=True`` (the ``campaign run --resources`` flag)
    adds an aggregate ``"resources"`` block (peak RSS across runs, summed
    GC/wall/subsystem time).  It is **opt-in precisely because** those
    quantities are wall-clock noise: enabling it forfeits the
    byte-identity guarantee above, which the resume tests pin.
    """
    runs = []
    missing = []
    by_point: Dict[Tuple, Tuple[PlannedRun, List[SimulationResult]]] = {}
    for planned, result in zip(plan.runs, results):
        if result is None:
            missing.append(planned.run_id)
            continue
        ch = result.channel_stats
        runs.append({
            "run_id": planned.run_id,
            "digest": planned.digest,
            "point": dict(sorted(planned.point.items())),
            "metrics": {
                "re": result.re,
                "srb": result.srb,
                "latency": result.latency,
                "hellos": result.hellos,
                "broadcasts": result.stats.broadcasts,
            },
            "events_processed": result.events_processed,
            "end_time": result.end_time,
            "channel": {
                "transmissions": ch.transmissions,
                "deliveries": ch.deliveries,
                "collisions": ch.collisions,
            },
            "broadcasts_skipped": result.broadcasts_skipped,
            "fault_trace": [
                [e.time, e.kind, e.host_id] for e in result.fault_trace
            ],
        })
        key = tuple(sorted(
            (k, v) for k, v in planned.point.items() if k != "seed"
        ))
        by_point.setdefault(key, (planned, []))[1].append(result)

    summary = []
    # repr-keyed sort: point values can mix types across axes (None
    # speeds, str fault names), which plain tuple comparison rejects.
    for key in sorted(by_point, key=repr):
        planned, point_results = by_point[key]
        agg = aggregate(planned.config, point_results)
        summary.append({
            "point": dict(key),
            "seeds": len(point_results),
            "re": _estimate_to_dict(agg.re),
            "srb": _estimate_to_dict(agg.srb),
            "latency": _estimate_to_dict(agg.latency),
        })

    payload: Dict[str, Any] = {
        "campaign_id": plan.campaign_id,
        "name": plan.spec.name,
        "spec_digest": plan.spec.digest(),
        "total_runs": plan.total,
        "completed_runs": len(runs),
        "missing": missing,
        "runs": runs,
        "summary": summary,
    }
    if include_resources:
        total = ResourceProfile()
        sampled = 0
        for result in results:
            # getattr: results unpickled from a pre-resources cache lack
            # the field entirely.
            profile = getattr(result, "resources", None) if result else None
            if profile is not None:
                total.merge(profile)
                sampled += 1
        payload["resources"] = dict(total.as_dict(), runs_sampled=sampled)
    return payload


def campaign_status(directory: Union[str, Path]) -> Dict[str, Any]:
    """Manifest + live checkpoint progress for a campaign directory.

    Used by ``repro-manet campaign status`` and the HTTP service; raises
    ``FileNotFoundError`` when the directory holds no manifest.
    """
    directory = Path(directory)
    manifest = load_manifest(directory / MANIFEST_NAME)
    if manifest is None:
        raise FileNotFoundError(f"no {MANIFEST_NAME} in {directory}")
    records = load_records(directory / PROGRESS_NAME)
    done = sum(1 for r in records.values() if r.status == "done")
    simulated = sum(
        1 for r in records.values() if r.status == "done" and r.simulated
    )
    total = manifest.get("total_runs", 0)
    return {
        "campaign_id": manifest.get("campaign_id"),
        "name": manifest.get("name"),
        "status": manifest.get("status"),
        "total_runs": total,
        "completed_runs": done,
        "simulated_runs": simulated,
        "cached_runs": done - simulated,
        "progress": (done / total) if total else 0.0,
        "results_available": (directory / RESULTS_NAME).exists(),
    }


class CampaignExecutor:
    """Execute (or resume) one campaign inside its directory."""

    def __init__(
        self,
        plan: CampaignPlan,
        directory: Union[str, Path],
        max_workers: Optional[int] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: Optional[int] = None,
        runner: Optional[ParallelRunner] = None,
        include_resources: bool = False,
    ) -> None:
        self.plan = plan
        self.directory = Path(directory)
        self.include_resources = include_resources
        if runner is not None:
            self.runner = runner
        else:
            self.runner = ParallelRunner(
                max_workers=max_workers,
                cache_dir=cache_dir or self.directory / "cache",
            )
        if self.runner.cache is None:
            raise ValueError(
                "campaigns need a result cache (it is the resume store); "
                "pass cache_dir or a runner with one"
            )
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.checkpoint_every = checkpoint_every or max(
            4, 2 * (self.runner.max_workers or 1)
        )

    # ----------------------------------------------------------- helpers

    @staticmethod
    def _set_queue_depth(reg, remaining: int) -> None:
        reg.gauge(
            "repro_campaign_queue_depth",
            "Planned runs not yet checkpointed in the current campaign.",
        ).set(remaining)

    def _manifest(self, status: str, completed: int) -> Dict[str, Any]:
        plan = self.plan
        return {
            "manifest_version": 1,
            "campaign_id": plan.campaign_id,
            "name": plan.spec.name,
            "spec": plan.spec.to_dict(),
            "spec_digest": plan.spec.digest(),
            "status": status,
            "total_runs": plan.total,
            "completed_runs": completed,
            "checkpoint_every": self.checkpoint_every,
            "cache_dir": str(self.runner.cache.directory),
            "runs": [
                {
                    "run_id": r.run_id,
                    "digest": r.digest,
                    "point": dict(sorted(r.point.items())),
                }
                for r in plan.runs
            ],
        }

    def _record(
        self, planned: PlannedRun, result: SimulationResult
    ) -> CheckpointRecord:
        def clean(x: float) -> float:
            return x if math.isfinite(x) else float("nan")

        return CheckpointRecord(
            run_id=planned.run_id,
            digest=planned.digest,
            status="done",
            simulated=not result.from_cache,
            re=clean(result.re),
            srb=clean(result.srb),
            latency=clean(result.latency),
            events=result.events_processed,
            wall_time=result.wall_time,
        )

    # -------------------------------------------------------------- run

    def run(
        self,
        progress: Optional[Callable[[PlannedRun, SimulationResult], None]] = None,
    ) -> CampaignOutcome:
        """Execute every planned run not yet checkpointed; resume-safe.

        ``progress`` fires once per run as its chunk completes (both for
        fresh simulations and cache hits).  Returns an outcome whose
        ``status`` is ``"interrupted"`` when a ``KeyboardInterrupt`` /
        ``SIGTERM`` stopped the session early -- rerunning ``run()``
        later picks up exactly where the checkpoint left off.
        """
        plan = self.plan
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest_path = self.directory / MANIFEST_NAME
        existing = load_manifest(manifest_path)
        if existing is not None:
            if existing.get("campaign_id") != plan.campaign_id:
                raise CampaignMismatch(
                    f"{self.directory} belongs to campaign "
                    f"{existing.get('campaign_id')!r}, not {plan.campaign_id!r}"
                    " -- the spec changed; use a fresh directory"
                )
        recorded = load_records(self.directory / PROGRESS_NAME)
        write_manifest(
            manifest_path, self._manifest("running", len(recorded))
        )

        reg = telemetry_registry()
        if reg is not None:
            if recorded:
                reg.counter(
                    "repro_campaign_resumes_total",
                    "Campaign sessions that picked up an existing "
                    "checkpoint rather than starting fresh.",
                ).inc()
            self._set_queue_depth(reg, plan.total - len(recorded))

        results: List[Optional[SimulationResult]] = [None] * plan.total
        interrupted = False
        with CheckpointWriter(self.directory / PROGRESS_NAME) as ckpt:
            try:
                for lo in range(0, plan.total, self.checkpoint_every):
                    chunk = plan.runs[lo:lo + self.checkpoint_every]
                    chunk_start = time.perf_counter()
                    try:
                        chunk_results = self.runner.run_many(
                            [r.config for r in chunk]
                        )
                    except ExecutionInterrupted as exc:
                        chunk_results = exc.results
                        interrupted = True
                    if reg is not None:
                        reg.histogram(
                            "repro_campaign_chunk_seconds",
                            "Wall time per checkpoint chunk.",
                            buckets=CHUNK_BUCKETS,
                        ).observe(time.perf_counter() - chunk_start)
                    for planned, result in zip(chunk, chunk_results):
                        if result is None:
                            continue
                        results[planned.index] = result
                        if planned.run_id not in recorded:
                            record = self._record(planned, result)
                            ckpt.append(record)
                            recorded[planned.run_id] = record
                        if progress is not None:
                            progress(planned, result)
                    ckpt.flush()
                    done = sum(
                        1 for r in recorded.values() if r.status == "done"
                    )
                    if reg is not None:
                        self._set_queue_depth(reg, plan.total - done)
                    write_manifest(
                        manifest_path,
                        self._manifest(
                            "interrupted" if interrupted else "running", done
                        ),
                    )
                    if interrupted:
                        break
            except KeyboardInterrupt:
                # Interrupt between run_many calls (or during checkpoint
                # bookkeeping): flush what we have and exit resumable.
                interrupted = True
                ckpt.flush()
                write_manifest(
                    manifest_path,
                    self._manifest(
                        "interrupted",
                        sum(
                            1 for r in recorded.values()
                            if r.status == "done"
                        ),
                    ),
                )

        if interrupted:
            return CampaignOutcome(
                plan=plan,
                directory=self.directory,
                status="interrupted",
                results=results,
                perf=self.runner.perf,
            )

        from repro.experiments.io import save_json

        save_json(
            campaign_results_payload(
                plan, results, include_resources=self.include_resources
            ),
            self.directory / RESULTS_NAME,
        )
        write_manifest(manifest_path, self._manifest("complete", plan.total))
        return CampaignOutcome(
            plan=plan,
            directory=self.directory,
            status="complete",
            results=results,
            perf=self.runner.perf,
        )
