"""Async HTTP result service: many clients, one dedup'd result store.

A small HTTP/1.1 server on raw ``asyncio`` streams (stdlib only -- no
web framework) that fronts the shared SHA-256
:class:`~repro.experiments.parallel.ResultCache` and campaign
directories:

=======  ==============================  =====================================
Method   Path                            Meaning
=======  ==============================  =====================================
GET      ``/healthz``                    liveness probe
GET      ``/stats``                      runner perf counters + queue depth
GET      ``/results/<digest>``           cached result (instant, no sim)
POST     ``/runs``                       scenario JSON -> result or enqueue
GET      ``/runs/<digest>``              queue status of a submitted run
GET      ``/campaigns``                  campaigns under the root
GET      ``/campaigns/<id>/status``      manifest + live progress
GET      ``/campaigns/<id>/results``     the deterministic results.json
GET      ``/campaigns/<id>/events``      server-sent-events progress stream
=======  ==============================  =====================================

Design: the hot path (``GET /results/<digest>``) is a cache read and
never simulates -- that is the "millions of users" story: any number of
clients can ask for the same sweep point and exactly one simulation ever
runs.  Cold scenarios are deduplicated by digest into an in-process work
queue drained by a single background task that runs each batch through a
:class:`~repro.experiments.parallel.ParallelRunner` in a worker thread
(``asyncio.to_thread``), so the event loop keeps serving reads while
simulations execute.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.campaigns.checkpoint import load_manifest
from repro.campaigns.queue import (
    MANIFEST_NAME,
    PROGRESS_NAME,
    RESULTS_NAME,
    campaign_status,
)
from repro.experiments.io import result_to_dict, scenario_from_dict
from repro.experiments.parallel import ParallelRunner, config_digest
from repro.telemetry.expose import CONTENT_TYPE, render_prometheus
from repro.telemetry.registry import arm as arm_telemetry

__all__ = ["CampaignService", "ServiceHandle", "serve_in_background"]

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}

_MAX_BODY = 1 << 20  # 1 MiB of scenario JSON is plenty


class CampaignService:
    """The server object; ``start``/``stop`` from within an event loop."""

    def __init__(
        self,
        cache_dir: Union[str, Path],
        campaign_root: Optional[Union[str, Path]] = None,
        max_workers: Optional[int] = 1,
        host: str = "127.0.0.1",
        port: int = 8642,
        poll_interval: float = 0.25,
        sse_heartbeat: float = 15.0,
    ) -> None:
        self.runner = ParallelRunner(max_workers=max_workers, cache_dir=cache_dir)
        assert self.runner.cache is not None
        self.cache = self.runner.cache
        self.campaign_root = Path(campaign_root) if campaign_root else None
        self.host = host
        self.port = port
        self.poll_interval = poll_interval
        if sse_heartbeat <= 0:
            raise ValueError(f"sse_heartbeat must be > 0, got {sse_heartbeat}")
        self.sse_heartbeat = sse_heartbeat
        # The service is the natural telemetry host: a long-lived process
        # with a scrape endpoint.  arm() is idempotent, so an embedding
        # test that armed its own registry keeps it.
        self.telemetry = arm_telemetry()
        # Created in start(): on Python < 3.10 a Queue binds to the event
        # loop current at construction, which here would be the wrong one.
        self._queue: Optional["asyncio.Queue[Tuple[str, Any]]"] = None
        #: digest -> {"status": queued|running|done|failed, ...}
        self._runs: Dict[str, Dict[str, Any]] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker: Optional["asyncio.Task[None]"] = None

    # ---------------------------------------------------------- lifecycle

    async def start(self) -> None:
        self._queue = asyncio.Queue()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._worker = asyncio.get_running_loop().create_task(
            self._drain_queue()
        )

    async def stop(self) -> None:
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # --------------------------------------------------------- work queue

    async def _drain_queue(self) -> None:
        """Single consumer: simulate queued scenarios off the event loop."""
        assert self._queue is not None
        while True:
            digest, config = await self._queue.get()
            self._runs[digest] = {"status": "running"}
            try:
                await asyncio.to_thread(self.runner.run_many, [config])
            except Exception as exc:
                self._runs[digest] = {"status": "failed", "error": str(exc)}
            else:
                self._runs[digest] = {"status": "done"}
            finally:
                self._queue.task_done()

    def _enqueue(self, digest: str, config: Any) -> Dict[str, Any]:
        assert self._queue is not None, "service not started"
        state = self._runs.get(digest)
        if state is not None and state["status"] in ("queued", "running"):
            return {"digest": digest, "status": state["status"]}
        self._runs[digest] = {"status": "queued"}
        self._queue.put_nowait((digest, config))
        return {"digest": digest, "status": "queued"}

    # ------------------------------------------------------------- routes

    async def _route(
        self,
        method: str,
        parts: List[str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> Optional[Tuple[int, Any]]:
        """Dispatch; returns (status, json) or None if already streamed."""
        if parts == [] or parts == [""]:
            return 200, {
                "service": "repro-manet campaign service",
                "endpoints": [
                    "/healthz", "/stats", "/metrics", "/results/<digest>",
                    "/runs", "/runs/<digest>", "/campaigns",
                    "/campaigns/<id>/status", "/campaigns/<id>/results",
                    "/campaigns/<id>/events",
                ],
            }
        head = parts[0]
        if head == "healthz" and method == "GET":
            return 200, {"ok": True}
        if head == "metrics" and method == "GET":
            self._write_text(
                writer, 200, render_prometheus(self.telemetry), CONTENT_TYPE
            )
            await writer.drain()
            return None
        if head == "stats" and method == "GET":
            return 200, {
                "perf": self.runner.perf.as_dict(),
                "cache": self.cache.stats().as_dict(),
                "queue_depth": self._queue.qsize() if self._queue else 0,
                "tracked_runs": len(self._runs),
            }
        if head == "results" and len(parts) == 2 and method == "GET":
            return self._get_result(parts[1])
        if head == "runs":
            if method == "POST" and len(parts) == 1:
                return self._post_run(body)
            if method == "GET" and len(parts) == 2:
                state = self._runs.get(parts[1])
                if state is None:
                    if self.cache.get(parts[1]) is not None:
                        return 200, {"digest": parts[1], "status": "done"}
                    return 404, {"error": "unknown run", "digest": parts[1]}
                return 200, {"digest": parts[1], **state}
        if head == "campaigns":
            return await self._route_campaigns(method, parts, writer)
        return 404, {"error": f"no such endpoint: /{'/'.join(parts)}"}

    def _get_result(self, digest: str) -> Tuple[int, Any]:
        result = self.cache.get(digest)
        if result is not None:
            return 200, {
                "digest": digest,
                "status": "done",
                "result": result_to_dict(result),
            }
        state = self._runs.get(digest)
        if state is not None and state["status"] in ("queued", "running"):
            return 202, {"digest": digest, **state}
        return 404, {
            "error": "unknown digest",
            "digest": digest,
            **({"status": state["status"]} if state else {}),
        }

    def _post_run(self, body: bytes) -> Tuple[int, Any]:
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"body is not JSON: {exc}"}
        if isinstance(data, dict) and isinstance(data.get("scenario"), dict):
            data = data["scenario"]
        if not isinstance(data, dict):
            return 400, {"error": "body must be a scenario object"}
        try:
            config = scenario_from_dict(data)
            digest = config_digest(config)
        except (ValueError, TypeError) as exc:
            return 400, {"error": f"invalid scenario: {exc}"}
        result = self.cache.get(digest)
        if result is not None:
            return 200, {
                "digest": digest,
                "status": "done",
                "cached": True,
                "result": result_to_dict(result),
            }
        return 202, self._enqueue(digest, config)

    # -------------------------------------------------------- campaigns

    def _campaign_dir(self, campaign_id: str) -> Optional[Path]:
        if self.campaign_root is None:
            return None
        if not campaign_id or "/" in campaign_id or campaign_id.startswith("."):
            return None
        path = self.campaign_root / campaign_id
        return path if (path / MANIFEST_NAME).exists() else None

    async def _route_campaigns(
        self, method: str, parts: List[str], writer: asyncio.StreamWriter
    ) -> Optional[Tuple[int, Any]]:
        if method != "GET":
            return 405, {"error": "campaigns endpoints are read-only"}
        if self.campaign_root is None:
            return 404, {"error": "service started without a campaign root"}
        if len(parts) == 1:
            listing = []
            for child in sorted(self.campaign_root.iterdir()):
                if (child / MANIFEST_NAME).exists():
                    try:
                        listing.append(campaign_status(child))
                    except (OSError, ValueError):
                        continue
            return 200, {"campaigns": listing}
        directory = self._campaign_dir(parts[1])
        if directory is None:
            return 404, {"error": "unknown campaign", "campaign_id": parts[1]}
        if len(parts) == 3 and parts[2] == "status":
            return 200, campaign_status(directory)
        if len(parts) == 3 and parts[2] == "results":
            results_path = directory / RESULTS_NAME
            if not results_path.exists():
                return 404, {
                    "error": "campaign has no results yet",
                    **campaign_status(directory),
                }
            return 200, json.loads(results_path.read_text())
        if len(parts) == 3 and parts[2] == "events":
            await self._stream_events(writer, directory)
            return None
        return 404, {"error": f"no such endpoint: /{'/'.join(parts)}"}

    async def _stream_events(
        self, writer: asyncio.StreamWriter, directory: Path
    ) -> None:
        """Server-sent events: replay the checkpoint, then tail it live.

        While the campaign is quiet (no new checkpoint lines) the stream
        emits an SSE comment frame (``: heartbeat``) every
        ``sse_heartbeat`` seconds -- comments are invisible to SSE
        consumers by spec, but they keep idle-connection proxies and
        LB timeouts from reaping a stream that is merely waiting.
        """
        self._sse_gauge().inc()
        try:
            await self._stream_events_inner(writer, directory)
        finally:
            self._sse_gauge().dec()

    def _sse_gauge(self):
        return self.telemetry.gauge(
            "repro_sse_subscribers",
            "Currently connected /events SSE subscribers.",
        )

    async def _stream_events_inner(
        self, writer: asyncio.StreamWriter, directory: Path
    ) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        progress_path = directory / PROGRESS_NAME
        sent = 0
        last_write = time.monotonic()
        while True:
            try:
                lines = progress_path.read_text(
                    encoding="utf-8"
                ).splitlines()
            except FileNotFoundError:
                lines = []
            for line in lines[sent:]:
                if line.strip():
                    writer.write(b"data: " + line.encode("utf-8") + b"\r\n\r\n")
            if sent != len(lines):
                last_write = time.monotonic()
            sent = len(lines)
            manifest = load_manifest(directory / MANIFEST_NAME) or {}
            status = manifest.get("status")
            if status in ("complete", "interrupted"):
                payload = json.dumps({
                    "status": status,
                    "completed_runs": manifest.get("completed_runs"),
                    "total_runs": manifest.get("total_runs"),
                })
                writer.write(
                    b"event: end\r\ndata: " + payload.encode("utf-8")
                    + b"\r\n\r\n"
                )
                await writer.drain()
                return
            if time.monotonic() - last_write >= self.sse_heartbeat:
                writer.write(b": heartbeat\r\n\r\n")
                last_write = time.monotonic()
            try:
                await writer.drain()
            except ConnectionError:
                return
            await asyncio.sleep(self.poll_interval)

    # ---------------------------------------------------------- plumbing

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            parts = [p for p in path.split("?", 1)[0].split("/") if p]
            started = time.perf_counter()
            try:
                response = await self._route(method, parts, body, writer)
            except ConnectionError:
                self._note_request(method, parts, 0, started)
                return
            except Exception as exc:  # a route bug must not kill the server
                response = (500, {"error": f"{type(exc).__name__}: {exc}"})
            # None = the route streamed its own response (SSE, /metrics).
            self._note_request(
                method, parts, response[0] if response else 200, started
            )
            if response is not None:
                self._write_json(writer, response[0], response[1])
                await writer.drain()
        except (ConnectionError, asyncio.LimitOverrunError, ValueError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, path, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            return None
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return None
        if content_length > _MAX_BODY:
            return None
        body = (
            await reader.readexactly(content_length)
            if content_length else b""
        )
        return method.upper(), path, body

    @staticmethod
    def _endpoint_label(parts: List[str]) -> str:
        """The route *template* for one request path.

        Metrics label on templates, never raw paths: ``/results/<digest>``
        is one series, not one per digest (unbounded label cardinality is
        the classic way to blow up a metrics backend).
        """
        if not parts:
            return "/"
        head = parts[0]
        if head in ("healthz", "stats", "metrics") and len(parts) == 1:
            return f"/{head}"
        if head == "results" and len(parts) == 2:
            return "/results/<digest>"
        if head == "runs":
            return "/runs" if len(parts) == 1 else "/runs/<digest>"
        if head == "campaigns":
            if len(parts) == 1:
                return "/campaigns"
            if len(parts) == 3 and parts[2] in ("status", "results", "events"):
                return f"/campaigns/<id>/{parts[2]}"
            return "/campaigns/<id>/..."
        return "<other>"

    def _note_request(
        self, method: str, parts: List[str], code: int, started: float
    ) -> None:
        endpoint = self._endpoint_label(parts)
        self.telemetry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by route template / method / status "
            "(status 0 = client hung up mid-response).",
            ("endpoint", "method", "code"),
        ).labels(endpoint, method, str(code)).inc()
        self.telemetry.histogram(
            "repro_http_request_seconds",
            "Request handling time by route template (for SSE streams "
            "this is the full stream lifetime).",
            ("endpoint",),
        ).labels(endpoint).observe(time.perf_counter() - started)

    @staticmethod
    def _write_text(
        writer: asyncio.StreamWriter,
        status: int,
        text: str,
        content_type: str,
    ) -> None:
        body = text.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)

    @staticmethod
    def _write_json(
        writer: asyncio.StreamWriter, status: int, payload: Any
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)


class ServiceHandle:
    """A service running on a daemon thread (tests, embedding)."""

    def __init__(
        self,
        service: CampaignService,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.service = service
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def base_url(self) -> str:
        return f"http://{self.service.host}:{self.service.port}"

    def stop(self, timeout: float = 10.0) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.service.stop(), self._loop
        )
        try:
            future.result(timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout)


def serve_in_background(
    service: CampaignService, ready_timeout: float = 10.0
) -> ServiceHandle:
    """Start ``service`` on its own event loop in a daemon thread.

    Returns once the socket is bound (``service.port`` holds the real
    port, so ``port=0`` picks a free one).  Call ``handle.stop()`` to
    shut down.
    """
    started = threading.Event()
    boot_error: List[BaseException] = []
    loop = asyncio.new_event_loop()

    def run() -> None:
        asyncio.set_event_loop(loop)

        async def boot() -> None:
            try:
                await service.start()
            except BaseException as exc:
                boot_error.append(exc)
            finally:
                started.set()

        loop.run_until_complete(boot())
        if not boot_error:
            loop.run_forever()
        loop.close()

    thread = threading.Thread(
        target=run, name="campaign-service", daemon=True
    )
    thread.start()
    if not started.wait(ready_timeout):
        raise TimeoutError("campaign service did not start in time")
    if boot_error:
        thread.join(1.0)
        raise boot_error[0]
    return ServiceHandle(service, loop, thread)
