"""Campaign orchestration: resumable sweeps + a shared result service.

The paper's conclusions come from large parameter sweeps (scheme x map x
hosts x speed x seed); this package is the scale layer that runs them as
**campaigns** -- declarative, deterministic, crash-resumable -- and
serves the shared result store over HTTP:

- :mod:`repro.campaigns.spec` -- the TOML/JSON campaign spec.
- :mod:`repro.campaigns.planner` -- deterministic expansion into runs
  with stable ids and cache digests.
- :mod:`repro.campaigns.checkpoint` -- JSONL progress log + atomic
  manifest.
- :mod:`repro.campaigns.queue` -- the work-queue executor (chunked
  through :class:`~repro.experiments.parallel.ParallelRunner`, resumes
  off the SHA-256 result cache with zero re-simulation).
- :mod:`repro.campaigns.service` -- stdlib asyncio HTTP front end:
  cached results served instantly, cold scenarios queued and dedup'd.
- :mod:`repro.campaigns.client` -- blocking stdlib client.

CLI: ``repro-manet campaign plan|run|status`` and ``repro-manet serve``.
"""

from repro.campaigns.checkpoint import (
    CheckpointRecord,
    CheckpointWriter,
    load_manifest,
    load_records,
    write_manifest,
)
from repro.campaigns.client import ServiceClient, ServiceError
from repro.campaigns.planner import (
    CampaignPlan,
    PlannedRun,
    axis_order,
    plan_campaign,
)
from repro.campaigns.queue import (
    CampaignExecutor,
    CampaignMismatch,
    CampaignOutcome,
    campaign_results_payload,
    campaign_status,
)
from repro.campaigns.service import (
    CampaignService,
    ServiceHandle,
    serve_in_background,
)
from repro.campaigns.spec import (
    GRID_AXES,
    NO_FAULTS,
    CampaignSpec,
    SpecError,
    load_spec,
    spec_from_dict,
)

__all__ = [
    "GRID_AXES",
    "NO_FAULTS",
    "CampaignExecutor",
    "CampaignMismatch",
    "CampaignOutcome",
    "CampaignPlan",
    "CampaignService",
    "CampaignSpec",
    "CheckpointRecord",
    "CheckpointWriter",
    "PlannedRun",
    "ServiceClient",
    "ServiceError",
    "ServiceHandle",
    "SpecError",
    "axis_order",
    "campaign_results_payload",
    "campaign_status",
    "load_manifest",
    "load_records",
    "load_spec",
    "plan_campaign",
    "serve_in_background",
    "spec_from_dict",
    "write_manifest",
]
