"""Campaign persistence: JSONL progress checkpoint + atomic manifest.

Two files live in a campaign directory:

- ``manifest.json`` -- the campaign's identity and coarse state (spec,
  run table, completion counts, status).  Always written atomically
  (tmp + ``os.replace``), so readers -- the HTTP service, ``campaign
  status``, a resuming executor -- never observe a torn document.
- ``progress.jsonl`` -- one appended line per finished run, flushed and
  fsync'd at checkpoint boundaries.  Append-only survives crashes by
  construction: the worst a SIGKILL can leave is one torn final line,
  which the loader detects and drops (that run simply re-runs -- or
  cache-hits -- on resume).

Neither file stores results; those live in the shared
:class:`~repro.experiments.parallel.ResultCache` keyed by each run's
config digest.  The checkpoint only records *which* runs finished, so
resume = replay the plan, let the cache serve completed digests.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Optional, TextIO, Union

from repro.telemetry.registry import registry as telemetry_registry

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointRecord",
    "CheckpointWriter",
    "load_records",
    "load_manifest",
    "write_manifest",
]

#: Bump when the record schema changes incompatibly.
CHECKPOINT_VERSION = 1

PathLike = Union[str, Path]


@dataclass(frozen=True)
class CheckpointRecord:
    """One finished run, as appended to ``progress.jsonl``."""

    run_id: str
    digest: str
    status: str  # "done" | "failed"
    simulated: bool  # False when the result came from the cache
    re: float
    srb: float
    latency: float
    events: int
    wall_time: float
    error: Optional[str] = None

    def to_json(self) -> str:
        data = asdict(self)
        data["v"] = CHECKPOINT_VERSION
        return json.dumps(data, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CheckpointRecord":
        data = dict(data)
        data.pop("v", None)
        return cls(**data)


class CheckpointWriter:
    """Append-only writer with explicit durability points.

    ``append`` buffers; ``flush`` pushes everything to disk with an
    ``fsync`` so a checkpoint boundary survives power loss, not just
    process death.  Usable as a context manager (flushes on exit).
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._fh: Optional[TextIO] = None

    def _handle(self) -> TextIO:
        if self._fh is None:
            self._fh = self.path.open("a", encoding="utf-8")
        return self._fh

    def append(self, record: CheckpointRecord) -> None:
        self._handle().write(record.to_json() + "\n")
        reg = telemetry_registry()
        if reg is not None:
            reg.counter(
                "repro_checkpoint_appends_total",
                "Run records appended to campaign checkpoints.",
            ).inc()

    def flush(self) -> None:
        if self._fh is None:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        reg = telemetry_registry()
        if reg is not None:
            reg.counter(
                "repro_checkpoint_flushes_total",
                "Durability points: checkpoint flush+fsync calls.",
            ).inc()

    def close(self) -> None:
        if self._fh is not None:
            self.flush()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def load_records(path: PathLike) -> Dict[str, CheckpointRecord]:
    """Replay a checkpoint file into ``run_id -> record`` (last wins).

    Tolerates a torn final line (partial write at the instant of a
    crash) by dropping it; a malformed line *followed by* valid ones
    means real corruption and raises.
    """
    path = Path(path)
    records: Dict[str, CheckpointRecord] = {}
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except FileNotFoundError:
        return records
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
            record = CheckpointRecord.from_dict(data)
        except (json.JSONDecodeError, TypeError, KeyError) as exc:
            if lineno == len(lines) - 1:
                break  # torn tail from a crash mid-append: drop it
            raise ValueError(
                f"{path}:{lineno + 1}: corrupt checkpoint line: {exc}"
            ) from exc
        records[record.run_id] = record
    return records


def write_manifest(path: PathLike, manifest: Dict[str, Any]) -> None:
    """Atomically replace the manifest (readers never see a torn file)."""
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_manifest(path: PathLike) -> Optional[Dict[str, Any]]:
    """The manifest dict, or ``None`` when the file does not exist."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    return json.loads(text)
