"""Declarative campaign specifications.

A campaign is the unit of "reproduce a whole figure / surface": a sweep
grid (scheme x map x hosts x speed x seed x fault plan) crossed with a
base scenario, expanded deterministically into thousands of
:class:`~repro.experiments.config.ScenarioConfig`\\ s.  The spec is a
small TOML or JSON file::

    name = "storm-sweep"

    [grid]
    scheme = ["flooding", "adaptive-counter"]
    map_units = [1, 5, 9]
    seed = [1, 2, 3, 4]
    faults = ["none", "churny"]

    [scenario]
    num_broadcasts = 30

    [faults.churny]
    spec = "churn:rate=0.01,downtime=5"

Grid axes may sweep any scalar scenario field, dotted
``scheme_params.<key>`` entries, and ``faults`` (by plan name; ``none``
is the fault-free run).  Everything not swept comes from ``[scenario]``
(same schema as :func:`repro.experiments.io.scenario_from_dict`) or the
paper defaults.

The spec's identity is a SHA-256 digest of its canonical JSON form:
two textually different files describing the same campaign get the same
campaign id, and a changed spec can never silently reuse another
campaign's directory.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

from repro.experiments.io import scenario_from_dict
from repro.faults.plan import FaultPlan
from repro.schemes import SCHEME_REGISTRY

__all__ = [
    "GRID_AXES",
    "NO_FAULTS",
    "CampaignSpec",
    "SpecError",
    "load_spec",
    "spec_from_dict",
]

#: Scenario fields a grid may sweep directly (scalar-valued).
GRID_AXES = frozenset({
    "scheme", "map_units", "unit_length", "num_hosts", "num_broadcasts",
    "interarrival_max", "max_speed_kmh", "mobility", "seed", "drain",
    "faults",
})

#: Reserved ``faults``-axis value meaning "no fault plan".
NO_FAULTS = "none"

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class SpecError(ValueError):
    """The campaign spec is malformed (bad axis, empty grid values, ...)."""


@dataclass(frozen=True)
class CampaignSpec:
    """A validated campaign description.

    ``grid`` maps axis name to the tuple of values it sweeps; ``scenario``
    is the base scenario dict (unswept fields); ``fault_plans`` holds the
    named plans a ``faults`` axis refers to.
    """

    name: str
    grid: Dict[str, Tuple[Any, ...]]
    scenario: Dict[str, Any] = field(default_factory=dict)
    fault_plans: Dict[str, FaultPlan] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise SpecError(
                f"campaign name must match {_NAME_RE.pattern}, "
                f"got {self.name!r}"
            )
        for axis, values in self.grid.items():
            if not (axis in GRID_AXES or axis.startswith("scheme_params.")):
                raise SpecError(
                    f"unknown grid axis {axis!r} (allowed: "
                    f"{', '.join(sorted(GRID_AXES))}, scheme_params.<key>)"
                )
            if not values:
                raise SpecError(f"grid axis {axis!r} has no values")
            for v in values:
                if v is not None and not isinstance(v, (bool, int, float, str)):
                    raise SpecError(
                        f"grid axis {axis!r} value {v!r} is not a scalar"
                    )
            if len(set(values)) != len(values):
                raise SpecError(f"grid axis {axis!r} repeats values: {values}")
        for scheme in list(self.grid.get("scheme", ())) + (
            [self.scenario["scheme"]] if "scheme" in self.scenario else []
        ):
            if scheme not in SCHEME_REGISTRY:
                raise SpecError(
                    f"unknown scheme {scheme!r} (known: "
                    f"{', '.join(sorted(SCHEME_REGISTRY))})"
                )
        self._validate_scheme_params()
        for plan_name in self.grid.get("faults", ()):
            if plan_name != NO_FAULTS and plan_name not in self.fault_plans:
                raise SpecError(
                    f"faults axis names undefined plan {plan_name!r} "
                    f"(defined: {', '.join(sorted(self.fault_plans)) or '-'})"
                )
        # Validate the base scenario dict eagerly: a bad field should fail
        # at spec load, not run 900 of 1000 runs and then die.
        try:
            scenario_from_dict(dict(self.scenario))
        except (ValueError, TypeError) as exc:
            raise SpecError(f"invalid [scenario] section: {exc}") from exc

    def _swept_schemes(self) -> Tuple[str, ...]:
        """Every scheme this campaign can run (grid axis, else base, else
        the paper default)."""
        swept = self.grid.get("scheme")
        if swept:
            return tuple(swept)
        return (self.scenario.get("scheme", "flooding"),)

    def _validate_scheme_params(self) -> None:
        """Check dotted ``scheme_params.<key>`` axes and base-scenario
        ``scheme_params`` keys against each swept scheme's parameter
        schema -- a typo'd key must fail at load time, not silently run
        the whole campaign on defaults."""
        axis_params = {
            axis[len("scheme_params."):]: values
            for axis, values in self.grid.items()
            if axis.startswith("scheme_params.")
        }
        base_params = self.scenario.get("scheme_params", {})
        if not axis_params and not base_params:
            return
        for scheme in self._swept_schemes():
            spec = SCHEME_REGISTRY[scheme]
            for key in list(axis_params) + list(base_params):
                if key not in spec.param_names:
                    raise SpecError(
                        f"scheme_params.{key} is not a parameter of swept "
                        f"scheme {scheme!r} (accepted: "
                        f"{spec.accepted_parameters()})"
                    )
            for key, values in axis_params.items():
                param = spec.param(key)
                if not param.sweepable:
                    raise SpecError(
                        f"scheme_params.{key} of scheme {scheme!r} takes a "
                        "function object and cannot be swept from a spec"
                    )
                for value in values:
                    error = param.validate(value)
                    if error is not None:
                        raise SpecError(
                            f"scheme_params.{key} for scheme {scheme!r}: "
                            f"{error}"
                        )

    # ---------------------------------------------------------- identity

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready canonical form (inverse of :func:`spec_from_dict`)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "grid": {axis: list(vals) for axis, vals in self.grid.items()},
        }
        if self.scenario:
            out["scenario"] = dict(self.scenario)
        if self.fault_plans:
            out["faults"] = {
                name: plan.to_dict()
                for name, plan in self.fault_plans.items()
            }
        return out

    def digest(self) -> str:
        """SHA-256 of the canonical spec (campaign identity)."""
        blob = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @property
    def total_runs(self) -> int:
        n = 1
        for values in self.grid.values():
            n *= len(values)
        return n


def spec_from_dict(data: Mapping[str, Any]) -> CampaignSpec:
    """Build a :class:`CampaignSpec` from a parsed TOML/JSON document."""
    if not isinstance(data, Mapping):
        raise SpecError(f"spec must be a table/object, got {type(data).__name__}")
    unknown = set(data) - {"name", "grid", "scenario", "faults"}
    if unknown:
        raise SpecError(
            f"unknown top-level spec key(s): {', '.join(sorted(unknown))}"
        )
    name = data.get("name")
    if not isinstance(name, str):
        raise SpecError("spec needs a string 'name'")
    grid_raw = data.get("grid", {})
    if not isinstance(grid_raw, Mapping):
        raise SpecError("[grid] must be a table of axis = [values]")
    grid: Dict[str, Tuple[Any, ...]] = {}
    for axis, values in grid_raw.items():
        if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
            raise SpecError(
                f"grid axis {axis!r} must be a list of values, got {values!r}"
            )
        grid[str(axis)] = tuple(values)
    scenario = data.get("scenario", {})
    if not isinstance(scenario, Mapping):
        raise SpecError("[scenario] must be a table")
    plans_raw = data.get("faults", {})
    if not isinstance(plans_raw, Mapping):
        raise SpecError("[faults] must be a table of named plans")
    fault_plans: Dict[str, FaultPlan] = {}
    for plan_name, body in plans_raw.items():
        if plan_name == NO_FAULTS:
            raise SpecError(f"fault plan name {NO_FAULTS!r} is reserved")
        try:
            if isinstance(body, Mapping) and set(body) == {"spec"}:
                # [faults.x] spec = "churn:..." -- the CLI string form.
                fault_plans[str(plan_name)] = FaultPlan.parse(body["spec"])
            elif isinstance(body, Mapping):
                fault_plans[str(plan_name)] = FaultPlan.from_dict(dict(body))
            elif isinstance(body, str):
                fault_plans[str(plan_name)] = FaultPlan.parse(body)
            else:
                raise ValueError(f"expected a plan table or spec string")
        except (ValueError, TypeError, KeyError) as exc:
            raise SpecError(f"invalid fault plan {plan_name!r}: {exc}") from exc
    return CampaignSpec(
        name=name,
        grid=grid,
        scenario=dict(scenario),
        fault_plans=fault_plans,
    )


def load_spec(path: Union[str, Path]) -> CampaignSpec:
    """Load a spec file; format by extension (``.toml`` / ``.json``).

    TOML needs the stdlib ``tomllib`` (Python >= 3.11); on older
    interpreters write the spec as JSON -- the schemas are identical.
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # Python < 3.11
            raise SpecError(
                "TOML specs need Python >= 3.11 (stdlib tomllib); "
                "use a .json spec on this interpreter"
            ) from exc
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError(f"{path}: invalid TOML: {exc}") from exc
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"{path}: invalid JSON: {exc}") from exc
    return spec_from_dict(data)
