"""Blocking client for the campaign result service (stdlib only).

Wraps the service's JSON endpoints in typed helpers::

    client = ServiceClient("http://127.0.0.1:8642")
    client.health()
    submitted = client.submit_scenario(scenario_to_dict(config))
    result = client.wait_result(submitted["digest"], timeout=120)

``wait_result`` polls -- the server already deduplicates by digest, so
any number of clients can wait on the same scenario while exactly one
simulation runs.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, Optional

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The service answered with an error status."""

    def __init__(self, status: int, payload: Any) -> None:
        self.status = status
        self.payload = payload
        detail = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {detail}")


class ServiceClient:
    """Talk to one :class:`~repro.campaigns.service.CampaignService`."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------ plumbing

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        accept_statuses: tuple = (200, 202),
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                payload = json.loads(resp.read().decode("utf-8"))
                status = resp.status
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {"error": str(exc)}
            status = exc.code
        if status not in accept_statuses:
            raise ServiceError(status, payload)
        payload["_status"] = status
        return payload

    # ------------------------------------------------------------- calls

    def health(self) -> bool:
        return bool(self._request("GET", "/healthz").get("ok"))

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def get_result(self, digest: str) -> Optional[Dict[str, Any]]:
        """The cached result dict, or ``None`` when not (yet) available."""
        try:
            payload = self._request("GET", f"/results/{digest}")
        except ServiceError as exc:
            if exc.status == 404:
                return None
            raise
        return payload.get("result")

    def submit_scenario(self, scenario: Dict[str, Any]) -> Dict[str, Any]:
        """POST a scenario dict; returns the digest + status (+ result
        when it was already cached)."""
        return self._request("POST", "/runs", body={"scenario": scenario})

    def run_status(self, digest: str) -> Dict[str, Any]:
        return self._request("GET", f"/runs/{digest}")

    def wait_result(
        self, digest: str, timeout: float = 120.0, poll: float = 0.2
    ) -> Dict[str, Any]:
        """Poll until the digest's result exists; raises on fail/timeout."""
        deadline = time.monotonic() + timeout
        while True:
            result = self.get_result(digest)
            if result is not None:
                return result
            status = self.run_status(digest)
            if status.get("status") == "failed":
                raise ServiceError(500, status)
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"result {digest} not ready after {timeout:.0f}s "
                    f"(status: {status.get('status', 'unknown')})"
                )
            time.sleep(poll)

    def campaigns(self) -> Dict[str, Any]:
        return self._request("GET", "/campaigns")

    def campaign_status(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/campaigns/{campaign_id}/status")

    def campaign_results(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/campaigns/{campaign_id}/results")

    def iter_events(
        self, campaign_id: str, timeout: float = 60.0
    ) -> Iterator[Dict[str, Any]]:
        """Stream the campaign's SSE progress events as parsed dicts.

        Yields one dict per ``data:`` line until the server sends its
        terminal event (campaign complete/interrupted) and closes.
        """
        request = urllib.request.Request(
            f"{self.base_url}/campaigns/{campaign_id}/events",
            headers={"Accept": "text/event-stream"},
        )
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            for raw in resp:
                line = raw.decode("utf-8").strip()
                if line.startswith("data:"):
                    yield json.loads(line[len("data:"):].strip())
