"""Deterministic expansion of a campaign spec into planned runs.

The planner turns a :class:`~repro.campaigns.spec.CampaignSpec` into an
ordered list of :class:`PlannedRun`\\ s with **stable campaign-relative
ids**: axes iterate in sorted name order with ``seed`` innermost, so the
same spec always produces the same ``run-NNNNN`` -> scenario mapping, on
any machine, in any session.  That stability is what lets a crashed
campaign resume from its checkpoint: ``run-00042`` means the same
simulation today and tomorrow.

Each planned run also carries its :func:`config_digest`, the SHA-256
key the :class:`~repro.experiments.parallel.ResultCache` stores results
under -- the join key between checkpoint, cache and HTTP service.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Tuple

from repro.campaigns.spec import NO_FAULTS, CampaignSpec, SpecError
from repro.experiments.config import ScenarioConfig
from repro.experiments.io import scenario_from_dict
from repro.experiments.parallel import config_digest

__all__ = ["PlannedRun", "CampaignPlan", "plan_campaign", "axis_order"]


@dataclass(frozen=True)
class PlannedRun:
    """One scenario of a campaign, with its stable identity."""

    run_id: str  # "run-00000", campaign-relative, stable across sessions
    index: int
    point: Dict[str, Any]  # axis -> swept value (fault plans by name)
    config: ScenarioConfig
    digest: str  # ResultCache key

    def label(self) -> str:
        """Compact human-readable grid coordinates."""
        return " ".join(f"{k}={v}" for k, v in sorted(self.point.items()))


@dataclass(frozen=True)
class CampaignPlan:
    """A fully expanded campaign: spec + ordered runs + identity."""

    spec: CampaignSpec
    campaign_id: str
    runs: Tuple[PlannedRun, ...]

    @property
    def total(self) -> int:
        return len(self.runs)

    def by_id(self, run_id: str) -> PlannedRun:
        try:
            index = int(run_id.split("-", 1)[1])
        except (IndexError, ValueError):
            raise KeyError(run_id) from None
        if not 0 <= index < len(self.runs):
            raise KeyError(run_id)
        return self.runs[index]


def axis_order(spec: CampaignSpec) -> List[str]:
    """Axis iteration order: sorted names, ``seed`` innermost.

    Seed-innermost means the runs for one grid point sit adjacently in
    the queue, so partial progress tends to complete whole points first
    (nicer live summaries) -- and the order is documented and frozen
    because run ids depend on it.
    """
    axes = sorted(spec.grid)
    if "seed" in axes:
        axes.remove("seed")
        axes.append("seed")
    return axes


def _iter_points(spec: CampaignSpec) -> Iterator[Dict[str, Any]]:
    axes = axis_order(spec)
    for combo in itertools.product(*(spec.grid[a] for a in axes)):
        yield dict(zip(axes, combo))


def _config_for(spec: CampaignSpec, point: Dict[str, Any]) -> ScenarioConfig:
    scenario = dict(spec.scenario)
    scheme_params = dict(scenario.get("scheme_params", {}))
    for axis, value in point.items():
        if axis == "faults":
            scenario["faults"] = (
                None if value == NO_FAULTS
                else spec.fault_plans[value].to_dict()
            )
        elif axis.startswith("scheme_params."):
            scheme_params[axis.split(".", 1)[1]] = value
        else:
            scenario[axis] = value
    if scheme_params:
        scenario["scheme_params"] = scheme_params
    if scenario.get("faults") is None:
        scenario.pop("faults", None)
    return scenario_from_dict(scenario)


def plan_campaign(spec: CampaignSpec) -> CampaignPlan:
    """Expand ``spec`` into its deterministic run list.

    Raises :class:`~repro.campaigns.spec.SpecError` when a grid point
    produces an invalid scenario (e.g. sweeping ``num_hosts = [0]``).
    """
    runs: List[PlannedRun] = []
    for index, point in enumerate(_iter_points(spec)):
        try:
            config = _config_for(spec, point)
        except (ValueError, TypeError) as exc:
            raise SpecError(
                f"grid point {point!r} is not a valid scenario: {exc}"
            ) from exc
        runs.append(
            PlannedRun(
                run_id=f"run-{index:05d}",
                index=index,
                point=point,
                config=config,
                digest=config_digest(config),
            )
        )
    return CampaignPlan(
        spec=spec,
        campaign_id=f"{spec.name}-{spec.digest()[:10]}",
        runs=tuple(runs),
    )
