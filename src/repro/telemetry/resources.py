"""Per-run resource accounting: peak RSS, GC pressure, subsystem wall-time.

Complements :class:`repro.perf.KernelPerf` (what the kernel *did*) with
what the run *cost the process*: peak resident set size, how many
garbage collections ran, and an attribution of the run's wall time
across kernel subsystems.  The SLP toolchain ships the same layer around
its simulators (per-job resource accounting next to the result payload);
here it rides on every :class:`~repro.experiments.runner.SimulationResult`
as the ``resources`` block and flows through
:func:`repro.experiments.io.result_to_dict` into run JSON.

Two honesty notes, reflected in the field names:

- ``peak_rss_bytes`` is the **process-lifetime** peak at the end of the
  run (``ru_maxrss`` never decreases), not a per-run delta -- a batch's
  later runs inherit the peak of earlier ones.
- ``subsystem_wall`` is an **activity-weighted estimate**: the run's
  measured wall time split proportionally to each subsystem's
  :class:`KernelPerf` operation counts.  It ranks where time goes and
  tracks real shifts across code versions; it is not a profiler.

Everything is stdlib; on platforms without the ``resource`` module
(Windows) RSS reports 0 rather than failing.
"""

from __future__ import annotations

import gc
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["ResourceProfile", "ResourceMonitor", "peak_rss_bytes"]


def peak_rss_bytes() -> int:
    """The process's peak resident set size in bytes (0 if unknowable).

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS (the BSD
    heritage); normalized here so callers never see the difference.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return int(peak)
    return int(peak) * 1024


def _gc_collections() -> int:
    """Total collections across all generations so far."""
    return sum(stat.get("collections", 0) for stat in gc.get_stats())


#: KernelPerf counters used as per-subsystem activity weights.  Each
#: entry maps a subsystem to the counter names whose sum is its weight.
SUBSYSTEM_COUNTERS: Dict[str, tuple] = {
    "scheduler": ("events_processed", "events_cancelled"),
    "channel": ("transmissions", "deliveries", "collisions", "deaf_misses"),
    "mac": ("frames_sent", "frames_received", "frames_corrupted",
            "backoffs_started"),
    "mobility": ("pos_misses", "pos_batch_evals"),
    "hello": ("hello_updates", "neighbor_expirations"),
}


def subsystem_wall_estimate(
    wall_time: float, perf: Optional[Any]
) -> Dict[str, float]:
    """Split ``wall_time`` across subsystems by KernelPerf activity.

    Returns ``{}`` when there are no counters to weight by (no perf
    block, or a run that did nothing).
    """
    if perf is None or wall_time <= 0.0:
        return {}
    weights = {
        name: float(sum(getattr(perf, counter, 0) for counter in counters))
        for name, counters in SUBSYSTEM_COUNTERS.items()
    }
    total = sum(weights.values())
    if total <= 0.0:
        return {}
    return {
        name: wall_time * weight / total
        for name, weight in sorted(weights.items())
    }


@dataclass
class ResourceProfile:
    """What one simulation run cost the process."""

    #: Process-lifetime peak RSS observed at the end of the run (bytes).
    peak_rss_bytes: int = 0
    #: Garbage collections that ran during the run (all generations).
    gc_collections: int = 0
    #: Net live-object growth across the run (``len(gc.get_objects())``
    #: is too slow to take; this is the gen-0 allocation counter delta,
    #: a cheap churn proxy).  May be negative after a collection.
    gc_objects_delta: int = 0
    #: The run's measured wall time (same value as
    #: ``SimulationResult.wall_time``).
    wall_time: float = 0.0
    #: Activity-weighted estimate of wall time per kernel subsystem
    #: (see module docstring; keys from :data:`SUBSYSTEM_COUNTERS`).
    subsystem_wall: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "peak_rss_bytes": self.peak_rss_bytes,
            "gc_collections": self.gc_collections,
            "gc_objects_delta": self.gc_objects_delta,
            "wall_time": self.wall_time,
            "subsystem_wall": dict(self.subsystem_wall),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResourceProfile":
        return cls(
            peak_rss_bytes=data.get("peak_rss_bytes", 0),
            gc_collections=data.get("gc_collections", 0),
            gc_objects_delta=data.get("gc_objects_delta", 0),
            wall_time=data.get("wall_time", 0.0),
            subsystem_wall=dict(data.get("subsystem_wall", {})),
        )

    def merge(self, other: "ResourceProfile") -> "ResourceProfile":
        """Aggregate across runs: peaks max, counters sum; ``self``."""
        self.peak_rss_bytes = max(self.peak_rss_bytes, other.peak_rss_bytes)
        self.gc_collections += other.gc_collections
        self.gc_objects_delta += other.gc_objects_delta
        self.wall_time += other.wall_time
        for name, value in other.subsystem_wall.items():
            self.subsystem_wall[name] = (
                self.subsystem_wall.get(name, 0.0) + value
            )
        return self


class ResourceMonitor:
    """Bracketing helper: ``start()`` before the run, ``finish()`` after.

    Costs two ``gc.get_stats()`` walks and one ``getrusage`` call per
    run -- microseconds, which is why every run collects it
    unconditionally (no arming needed, unlike the metrics registry).
    """

    __slots__ = ("_gc_collections", "_gc_allocated")

    def start(self) -> "ResourceMonitor":
        self._gc_collections = _gc_collections()
        counts = gc.get_count()
        self._gc_allocated = counts[0]
        return self

    def finish(
        self, wall_time: float, perf: Optional[Any] = None
    ) -> ResourceProfile:
        counts = gc.get_count()
        return ResourceProfile(
            peak_rss_bytes=peak_rss_bytes(),
            gc_collections=_gc_collections() - self._gc_collections,
            gc_objects_delta=counts[0] - self._gc_allocated,
            wall_time=wall_time,
            subsystem_wall=subsystem_wall_estimate(wall_time, perf),
        )
