"""Operational metrics registry: counters, gauges, histograms with labels.

This is the *operational* half of the observability story.  The
simulation-science half already exists -- :class:`repro.perf.KernelPerf`
snapshots what one run's kernel did, :mod:`repro.trace` records why each
packet was or was not rebroadcast.  What neither answers is "how is the
*process* doing": how many runs the parallel runner has served, what the
cache hit rate has been since start, how deep the campaign queue is, how
long HTTP requests take.  Those are live, label-sliced, scrape-on-demand
quantities, which is exactly what a Prometheus-style registry models.

Dependency-free by design (stdlib ``threading`` only) and **zero-cost
when unarmed**, following the tracing subsystem's ``trace is not None``
guard pattern: the process-wide registry is ``None`` until :func:`arm`
is called, and every instrumentation site is written as::

    reg = telemetry.registry()
    if reg is not None:
        reg.counter("repro_runner_runs_started_total").inc()

so a disarmed process pays one global read and one ``is None`` test per
site -- nothing allocates, nothing locks.

Model
-----
A registry holds **families** (one per metric name); a family holds one
**child** per label-value combination (or a single anonymous child when
it has no labels).  Families are typed:

- :class:`Counter` -- monotonically increasing ``inc(amount)``.
- :class:`Gauge` -- ``set``/``inc``/``dec``, any float.
- :class:`Histogram` -- ``observe(value)`` into configurable buckets,
  exposed cumulatively with the conventional ``+Inf`` catch-all plus
  ``_sum``/``_count``.

All mutation and collection goes through one registry-wide lock, so a
scrape racing an update always sees a consistent snapshot.  Metric and
label names are validated against the Prometheus data-model grammar at
family-creation time; label *values* may be any string (exposition
escapes them).
"""

from __future__ import annotations

import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Sample",
    "arm",
    "disarm",
    "registry",
    "counter_value",
]

#: Prometheus' default duration buckets (seconds) -- a sensible span for
#: both per-run simulation wall times and HTTP request latencies.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_RESERVED_LABELS = frozenset({"le", "quantile"})


class Sample:
    """One exposition line: ``name{labels} value`` (pre-escaping)."""

    __slots__ = ("name", "labels", "value")

    def __init__(
        self, name: str, labels: Sequence[Tuple[str, str]], value: float
    ) -> None:
        self.name = name
        self.labels = tuple(labels)
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sample({self.name!r}, {self.labels!r}, {self.value!r})"


class _Child:
    """Base for per-label-set metric children; subclasses hold values."""

    __slots__ = ("_family",)

    def __init__(self, family: "MetricFamily") -> None:
        self._family = family

    @property
    def _lock(self) -> threading.Lock:
        return self._family._registry._lock


class Counter(_Child):
    """Monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self, family: "MetricFamily") -> None:
        super().__init__(family)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Child):
    """A value that can go up and down (queue depth, subscriber count)."""

    __slots__ = ("_value",)

    def __init__(self, family: "MetricFamily") -> None:
        super().__init__(family)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram(_Child):
    """Bucketed observations (wall times, latencies).

    Buckets store *non*-cumulative counts internally; :meth:`snapshot`
    (and therefore exposition) returns the conventional cumulative form
    ending in the implicit ``+Inf`` bucket, whose count equals the total
    observation count.
    """

    __slots__ = ("_counts", "_sum", "_count")

    def __init__(self, family: "MetricFamily") -> None:
        super().__init__(family)
        # one slot per finite bound, plus the +Inf overflow slot
        self._counts = [0] * (len(family.buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        bounds = self._family.buckets
        # linear scan: bucket lists are short (~10) and observation sites
        # are per-run / per-request, not per-event
        i = 0
        n = len(bounds)
        while i < n and value > bounds[i]:
            i += 1
        with self._lock:
            self._counts[i] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative(self) -> List[Tuple[float, int]]:
        """``[(upper_bound, cumulative_count), ..., (inf, total)]``."""
        out = []
        running = 0
        for bound, n in zip(self._family.buckets, self._counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self._counts[-1]))
        return out


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one metric name (one per label-value tuple)."""

    __slots__ = (
        "name", "help", "type", "labelnames", "buckets", "_children",
        "_registry",
    )

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        type: str,
        labelnames: Tuple[str, ...],
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        for label in labelnames:
            if not _LABEL_NAME.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name: {label!r}")
            if label in _RESERVED_LABELS:
                raise ValueError(f"label name {label!r} is reserved")
        if type == "histogram":
            buckets = tuple(sorted(float(b) for b in buckets))
            if not buckets:
                raise ValueError("histograms need at least one bucket")
            if any(b != b or b == float("inf") for b in buckets):
                raise ValueError(
                    "explicit NaN/+Inf bucket bounds are not allowed "
                    "(+Inf is implicit)"
                )
        self._registry = registry
        self.name = name
        self.help = help
        self.type = type
        self.labelnames = labelnames
        self.buckets = buckets
        self._children: Dict[Tuple[str, ...], _Child] = {}

    # ------------------------------------------------------------ access

    def labels(self, *values: object, **kv: object) -> _Child:
        """The child for one label-value combination (created on first
        use).  Accepts positional values in ``labelnames`` order or the
        same set as keywords."""
        if kv:
            if values:
                raise ValueError("pass labels positionally or by keyword, "
                                 "not both")
            try:
                values = tuple(kv.pop(name) for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(
                    f"{self.name} is missing label {exc.args[0]!r}"
                ) from None
            if kv:
                raise ValueError(
                    f"{self.name} has no label(s) {sorted(kv)} "
                    f"(declared: {list(self.labelnames)})"
                )
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes {len(self.labelnames)} label value(s) "
                f"{list(self.labelnames)}, got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._registry._lock:
                child = self._children.get(key)
                if child is None:
                    child = _CHILD_TYPES[self.type](self)
                    self._children[key] = child
        return child

    def _anonymous(self) -> _Child:
        if self.labelnames:
            raise ValueError(
                f"{self.name} declares labels {list(self.labelnames)}; "
                "use .labels(...)"
            )
        return self.labels()

    # Convenience: an unlabeled family is usable directly.
    def inc(self, amount: float = 1.0) -> None:
        self._anonymous().inc(amount)  # type: ignore[union-attr]

    def set(self, value: float) -> None:
        self._anonymous().set(value)  # type: ignore[union-attr]

    def dec(self, amount: float = 1.0) -> None:
        self._anonymous().dec(amount)  # type: ignore[union-attr]

    def observe(self, value: float) -> None:
        self._anonymous().observe(value)  # type: ignore[union-attr]

    @property
    def value(self) -> float:
        return self._anonymous().value  # type: ignore[union-attr]

    # -------------------------------------------------------- collection

    def samples(self) -> List[Sample]:
        """Exposition samples for every child, label-sorted.

        Called under the registry lock by :meth:`MetricsRegistry.collect`.
        """
        out: List[Sample] = []
        for key in sorted(self._children):
            child = self._children[key]
            labels = tuple(zip(self.labelnames, key))
            if self.type == "histogram":
                assert isinstance(child, Histogram)
                for bound, cum in child.cumulative():
                    le = "+Inf" if bound == float("inf") else _format_bound(bound)
                    out.append(Sample(
                        self.name + "_bucket", labels + (("le", le),), cum
                    ))
                out.append(Sample(self.name + "_sum", labels, child.sum))
                out.append(Sample(self.name + "_count", labels, child.count))
            else:
                out.append(Sample(self.name, labels, child.value))  # type: ignore[union-attr]
        return out


def _format_bound(bound: float) -> str:
    """``0.5`` -> ``"0.5"``, ``5.0`` -> ``"5.0"`` (stable repr form)."""
    return repr(bound) if bound != int(bound) else f"{bound:.1f}"


class MetricsRegistry:
    """A process's (or test's) set of metric families."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    # ------------------------------------------------------- registration

    def _family(
        self,
        name: str,
        help: str,
        type: str,
        labelnames: Iterable[str],
        **extra: object,
    ) -> MetricFamily:
        labelnames = tuple(labelnames)
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = MetricFamily(
                        self, name, help, type, labelnames, **extra  # type: ignore[arg-type]
                    )
                    self._families[name] = family
                    return family
        if family.type != type or family.labelnames != labelnames:
            raise ValueError(
                f"metric {name!r} is already registered as a {family.type} "
                f"with labels {list(family.labelnames)}; cannot re-register "
                f"as a {type} with labels {list(labelnames)}"
            )
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> MetricFamily:
        return self._family(name, help, "counter", labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> MetricFamily:
        return self._family(name, help, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._family(
            name, help, "histogram", labelnames, buckets=tuple(buckets)
        )

    # -------------------------------------------------------- collection

    def collect(self) -> List[MetricFamily]:
        """Registered families, name-sorted (for exposition)."""
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def snapshot(self) -> List[Tuple[MetricFamily, List[Sample]]]:
        """Every family with its samples, read atomically.

        The whole walk happens under the registry lock, so a scrape
        racing concurrent updates sees one consistent point in time
        (histogram bucket counts always sum to ``_count``, etc.).
        """
        with self._lock:
            return [
                (family, family.samples())
                for family in (
                    self._families[n] for n in sorted(self._families)
                )
            ]

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)


# --------------------------------------------------------------------------
# The process-wide registry and the zero-cost guard.

_REGISTRY: Optional[MetricsRegistry] = None


def registry() -> Optional[MetricsRegistry]:
    """The armed process-wide registry, or ``None`` when disarmed.

    Instrumentation sites call this and skip all work on ``None`` --
    the same discipline as the tracing layer's ``trace is not None``.
    """
    return _REGISTRY


def arm(reg: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Arm process-wide telemetry; idempotent.

    With no argument, keeps the currently armed registry (creating one
    on first call).  Passing a registry installs *that* one -- tests use
    this to isolate their counters.
    """
    global _REGISTRY
    if reg is not None:
        _REGISTRY = reg
    elif _REGISTRY is None:
        _REGISTRY = MetricsRegistry()
    return _REGISTRY


def disarm() -> None:
    """Disarm process-wide telemetry (sites go back to no-ops)."""
    global _REGISTRY
    _REGISTRY = None


def counter_value(name: str, **labels: str) -> float:
    """Current value of a counter/gauge child, or 0.0 when disarmed /
    never touched.  A read-side convenience for report surfaces (CLI
    ``cache stats``, service ``/stats``)."""
    reg = _REGISTRY
    if reg is None:
        return 0.0
    family = reg._families.get(name)
    if family is None:
        return 0.0
    key = tuple(str(labels[n]) for n in family.labelnames if n in labels)
    if len(key) != len(family.labelnames):
        return 0.0
    child = family._children.get(key)
    if child is None or isinstance(child, Histogram):
        return 0.0
    return child.value  # type: ignore[union-attr]
