"""Operational telemetry: metrics registry, exposition, resources, bench gate.

The fourth observability layer, alongside :mod:`repro.perf` (per-run
kernel counters), :mod:`repro.trace` (per-decision provenance) and the
benchmark documents (one-off measurements):

- :mod:`repro.telemetry.registry` -- process-wide counters / gauges /
  histograms with labels; **zero-cost when unarmed** via the same
  ``x is not None`` guard discipline as tracing.  Armed by the campaign
  service and anything else that wants live metrics.
- :mod:`repro.telemetry.expose` -- Prometheus text exposition (the
  service's ``GET /metrics``) plus a strict validator.
- :mod:`repro.telemetry.resources` -- per-run resource profiles (peak
  RSS, GC activity, activity-weighted subsystem wall-time) attached to
  every :class:`~repro.experiments.runner.SimulationResult`.
- :mod:`repro.telemetry.bench` -- ``BENCH_*.json`` trajectory tracking:
  ``repro-manet bench record`` appends to ``bench_history.jsonl``,
  ``bench check`` gates on regressions vs a rolling baseline.

Instrumentation lives in the orchestration layers (parallel runner,
result cache, campaign executor/checkpoint, HTTP service) -- never in
the simulation kernel, whose hot path stays telemetry-free by design.
"""

from repro.telemetry.bench import (
    BenchCheckReport,
    MetricVerdict,
    check_history,
    flatten_metrics,
    infer_bench_name,
    load_history,
    record_entry,
)
from repro.telemetry.expose import (
    CONTENT_TYPE,
    render_prometheus,
    validate_exposition,
)
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    arm,
    counter_value,
    disarm,
    registry,
)
from repro.telemetry.resources import (
    ResourceMonitor,
    ResourceProfile,
    peak_rss_bytes,
)

__all__ = [
    "BenchCheckReport",
    "CONTENT_TYPE",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricVerdict",
    "MetricsRegistry",
    "ResourceMonitor",
    "ResourceProfile",
    "arm",
    "check_history",
    "counter_value",
    "disarm",
    "flatten_metrics",
    "infer_bench_name",
    "load_history",
    "peak_rss_bytes",
    "record_entry",
    "registry",
    "render_prometheus",
    "validate_exposition",
]
