"""Benchmark trajectory tracking: ``bench record`` / ``bench check``.

The repo pins one-off benchmark documents (``BENCH_kernel.json``,
``BENCH_scale.json``, ``BENCH_scheme_zoo.json``) but until now nothing
compared them *across* runs -- a perf PR was judged by a single
measurement.  This module turns those documents into a trajectory:

- :func:`record_entry` flattens a ``BENCH_*.json`` into numeric metrics
  and appends one timestamped line to ``bench_history.jsonl``.
- :func:`check_history` diffs the newest entry against a rolling
  baseline (the median of the previous ``window`` entries, per metric)
  and reports any higher-is-better metric that fell more than
  ``threshold`` below it.  The CLI maps regressions to a non-zero exit,
  which is what makes it a CI gate.

Only metrics whose dotted path matches a higher-is-better pattern
(default: ``events_per_sec``, ``speedup``) are *gated* -- wall times and
deterministic counters are recorded for the trajectory but never fail
the check (lower wall is better, and RE/SRB changes are semantics, not
perf, with their own golden tests).

History line schema (one JSON object per line)::

    {"v": 1, "ts": "2026-08-08T12:00:00+00:00", "bench": "kernel",
     "source": "BENCH_kernel.json", "platform": {...},
     "metrics": {"events_per_sec": 36479.8, "speedup": 2.24, ...}}
"""

from __future__ import annotations

import datetime
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "HISTORY_VERSION",
    "DEFAULT_GATE_PATTERNS",
    "BenchCheckReport",
    "MetricVerdict",
    "flatten_metrics",
    "infer_bench_name",
    "record_entry",
    "load_history",
    "check_history",
]

PathLike = Union[str, Path]

#: Bump when the history line schema changes incompatibly.
HISTORY_VERSION = 1

#: Subtrees of a BENCH document that are context, not measurements.
_EXCLUDED_KEYS = frozenset({"platform", "scenario", "bench"})

#: Dotted-path substrings marking a metric as higher-is-better and
#: therefore gated by ``check``.
DEFAULT_GATE_PATTERNS: Tuple[str, ...] = ("events_per_sec", "speedup")

_BENCH_FILE = re.compile(r"^BENCH_(?P<name>[A-Za-z0-9_-]+)\.json$")


def infer_bench_name(path: PathLike) -> str:
    """``BENCH_kernel.json`` -> ``"kernel"`` (else the bare stem)."""
    name = Path(path).name
    match = _BENCH_FILE.match(name)
    if match:
        return match.group("name")
    return Path(path).stem


def flatten_metrics(
    doc: Any, prefix: str = "", out: Optional[Dict[str, float]] = None
) -> Dict[str, float]:
    """Numeric leaves of a BENCH document as ``dotted.path -> value``.

    Dict keys join with ``.``; list elements index by position (bench
    sweeps are deterministically ordered).  Booleans and the excluded
    context subtrees (``platform``, ``scenario``) are skipped; numeric
    strings stay strings (they are labels, e.g. a formula in
    ``scenario.broadcasts``).
    """
    if out is None:
        out = {}
    if isinstance(doc, dict):
        for key in sorted(doc):
            if not prefix and key in _EXCLUDED_KEYS:
                continue
            sub_prefix = f"{prefix}.{key}" if prefix else str(key)
            flatten_metrics(doc[key], sub_prefix, out)
    elif isinstance(doc, (list, tuple)):
        for i, item in enumerate(doc):
            flatten_metrics(item, f"{prefix}.{i}" if prefix else str(i), out)
    elif isinstance(doc, bool):
        pass
    elif isinstance(doc, (int, float)) and prefix:
        out[prefix] = float(doc)
    return out


def record_entry(
    bench_path: PathLike,
    history_path: PathLike,
    name: Optional[str] = None,
    timestamp: Optional[str] = None,
) -> Dict[str, Any]:
    """Append one history line extracted from ``bench_path``.

    Returns the appended entry.  Raises ``ValueError`` when the bench
    document yields no numeric metrics (wrong file) and ``OSError`` /
    ``json.JSONDecodeError`` for unreadable input.
    """
    bench_path = Path(bench_path)
    doc = json.loads(bench_path.read_text(encoding="utf-8"))
    metrics = flatten_metrics(doc)
    if not metrics:
        raise ValueError(f"{bench_path} contains no numeric metrics")
    entry: Dict[str, Any] = {
        "v": HISTORY_VERSION,
        "ts": timestamp or datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "bench": name or infer_bench_name(bench_path),
        "source": bench_path.name,
        "platform": doc.get("platform") if isinstance(doc, dict) else None,
        "metrics": metrics,
    }
    history_path = Path(history_path)
    history_path.parent.mkdir(parents=True, exist_ok=True)
    with history_path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True, separators=(",", ":")))
        fh.write("\n")
    return entry


def load_history(
    history_path: PathLike, name: Optional[str] = None
) -> List[Dict[str, Any]]:
    """History entries in append order, optionally for one bench name.

    A torn final line (crash mid-append) is dropped; corruption earlier
    in the file raises, mirroring the campaign checkpoint loader.
    """
    path = Path(history_path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except FileNotFoundError:
        return []
    entries: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
            if not isinstance(entry, dict) or "metrics" not in entry:
                raise ValueError("not a history entry")
        except ValueError as exc:
            if lineno == len(lines) - 1:
                break  # torn tail from a crash mid-append
            raise ValueError(
                f"{path}:{lineno + 1}: corrupt history line: {exc}"
            ) from exc
        if name is None or entry.get("bench") == name:
            entries.append(entry)
    return entries


@dataclass(frozen=True)
class MetricVerdict:
    """One gated metric's latest value vs its rolling baseline."""

    metric: str
    baseline: float  # median of the window entries
    latest: float
    samples: int  # baseline entries the median came from

    @property
    def change(self) -> float:
        """Fractional change vs baseline (+ = faster, - = slower)."""
        if self.baseline == 0.0:
            return 0.0
        return self.latest / self.baseline - 1.0

    def regressed(self, threshold: float) -> bool:
        return self.change < -threshold


@dataclass
class BenchCheckReport:
    """Outcome of one ``bench check`` invocation."""

    bench: Optional[str]
    threshold: float
    window: int
    entries: int  # history entries considered (after name filtering)
    verdicts: List[MetricVerdict] = field(default_factory=list)
    #: Gated metrics in the latest entry with no prior history.
    new_metrics: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricVerdict]:
        return [v for v in self.verdicts if v.regressed(self.threshold)]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        header = (
            f"bench check: {self.entries} entries"
            + (f" for {self.bench!r}" if self.bench else "")
            + f", threshold {self.threshold:.0%}, window {self.window}"
        )
        if self.entries < 2:
            return header + "\nno baseline yet (need >= 2 entries); ok"
        lines = [header]
        width = max((len(v.metric) for v in self.verdicts), default=6)
        for v in sorted(self.verdicts, key=lambda v: v.change):
            flag = "REGRESSED" if v.regressed(self.threshold) else "ok"
            lines.append(
                f"  {v.metric:<{width}}  baseline {v.baseline:>12,.1f}  "
                f"latest {v.latest:>12,.1f}  {v.change:+7.1%}  {flag}"
            )
        for metric in self.new_metrics:
            lines.append(f"  {metric:<{width}}  (new metric, no baseline)")
        n = len(self.regressions)
        lines.append(
            "ok: no gated metric regressed" if self.ok
            else f"FAIL: {n} metric(s) regressed more than "
                 f"{self.threshold:.0%} below the rolling baseline"
        )
        return "\n".join(lines)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def check_history(
    history_path: PathLike,
    name: Optional[str] = None,
    threshold: float = 0.2,
    window: int = 5,
    patterns: Sequence[str] = DEFAULT_GATE_PATTERNS,
) -> BenchCheckReport:
    """Compare the newest history entry against its rolling baseline.

    For every gated metric (dotted path containing one of ``patterns``)
    present in the latest entry, the baseline is the **median** of that
    metric over the previous ``window`` entries -- median, not mean, so
    one noisy CI run cannot drag the baseline down and mask a real
    regression (the same noise-armour reasoning as the PR-5 overhead
    benchmark).  A metric more than ``threshold`` below baseline is a
    regression; fewer than two entries means "no baseline yet", which
    passes (a gate must not fail its own bootstrap).
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    entries = load_history(history_path, name=name)
    report = BenchCheckReport(
        bench=name, threshold=threshold, window=window, entries=len(entries)
    )
    if len(entries) < 2:
        return report
    latest = entries[-1]["metrics"]
    previous = entries[max(0, len(entries) - 1 - window):-1]
    for metric in sorted(latest):
        if not any(pattern in metric for pattern in patterns):
            continue
        history = [
            e["metrics"][metric] for e in previous if metric in e["metrics"]
        ]
        if not history:
            report.new_metrics.append(metric)
            continue
        report.verdicts.append(MetricVerdict(
            metric=metric,
            baseline=_median(history),
            latest=latest[metric],
            samples=len(history),
        ))
    return report
