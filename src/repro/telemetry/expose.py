"""Prometheus text exposition (format version 0.0.4) and a validator.

:func:`render_prometheus` turns a :class:`~repro.telemetry.registry.
MetricsRegistry` into the plain-text scrape format every Prometheus-
compatible collector understands::

    # HELP repro_cache_lookups_total Result-cache lookups by outcome.
    # TYPE repro_cache_lookups_total counter
    repro_cache_lookups_total{outcome="hit"} 42.0
    repro_cache_lookups_total{outcome="miss"} 7.0

The subtle parts, all covered by tests:

- **Label-value escaping**: values may contain anything; ``\\``, ``"``
  and newlines are escaped as ``\\\\``, ``\\"`` and ``\\n`` per the
  format spec.  ``# HELP`` text escapes ``\\`` and newlines.
- **Histogram cumulativity**: ``_bucket`` counts are cumulative and end
  in the implicit ``le="+Inf"`` bucket whose count equals ``_count``.
- **Atomic scrape**: the sample walk happens under the registry lock
  (:meth:`MetricsRegistry.snapshot`), so scraping during concurrent
  updates yields an internally consistent document.
- An empty registry renders to the empty string (a valid exposition).

:func:`validate_exposition` is a strict structural checker for the
subset this module emits -- tests and the CI smoke job run every scrape
through it so a formatting regression fails loudly rather than being
silently dropped by a collector.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from repro.telemetry.registry import MetricsRegistry, registry

__all__ = ["CONTENT_TYPE", "render_prometheus", "validate_exposition"]

#: The Content-Type a /metrics response must carry.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, int) or value == int(value):
        # Counters/bucket counts read better (and diff stabler) as "42.0"
        # than Python's exponent-happy float repr for large values.
        return f"{value:.1f}"
    return repr(float(value))


def render_prometheus(reg: Optional[MetricsRegistry] = None) -> str:
    """The registry's metrics in Prometheus text format 0.0.4.

    With no argument, renders the armed process-wide registry; disarmed
    (or empty) telemetry renders to ``""``.
    """
    if reg is None:
        reg = registry()
    if reg is None:
        return ""
    lines: List[str] = []
    for family, samples in reg.snapshot():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.type}")
        for sample in samples:
            if sample.labels:
                rendered = ",".join(
                    f'{name}="{_escape_label_value(value)}"'
                    for name, value in sample.labels
                )
                lines.append(
                    f"{sample.name}{{{rendered}}} "
                    f"{_format_value(sample.value)}"
                )
            else:
                lines.append(
                    f"{sample.name} {_format_value(sample.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


# --------------------------------------------------------------------------
# Validation (tests + CI smoke)

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>NaN|[+-]Inf|[+-]?[0-9.eE+-]+)$"
)
_LABEL_PAIR = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\["\\n])*)"$'
)


def _split_labels(text: str) -> List[Tuple[str, str]]:
    """Split ``a="x",b="y"`` respecting escaped quotes inside values."""
    pairs: List[Tuple[str, str]] = []
    i = 0
    n = len(text)
    while i < n:
        eq = text.index("=", i)
        if eq + 1 >= n or text[eq + 1] != '"':
            raise ValueError(f"label value must be quoted near {text[i:]!r}")
        j = eq + 2
        while j < n:
            if text[j] == "\\":
                j += 2
                continue
            if text[j] == '"':
                break
            j += 1
        else:
            raise ValueError(f"unterminated label value in {text!r}")
        pair = text[i:j + 1]
        match = _LABEL_PAIR.match(pair)
        if match is None:
            raise ValueError(f"malformed label pair: {pair!r}")
        pairs.append((match.group("name"), match.group("value")))
        i = j + 1
        if i < n:
            if text[i] != ",":
                raise ValueError(f"expected ',' between labels in {text!r}")
            i += 1
    return pairs


def validate_exposition(text: str) -> Dict[str, str]:
    """Structurally validate a text exposition; ``name -> type`` on success.

    Checks the invariants a scraper relies on and raises ``ValueError``
    naming the offending line otherwise:

    - every sample line parses (name, optional labels, numeric value);
    - every sample belongs to a ``# TYPE``-declared family;
    - histogram ``_bucket`` series are cumulative, non-decreasing in
      ``le`` order, and end with ``le="+Inf"`` equal to ``_count``.

    The empty string is valid (an empty registry).
    """
    types: Dict[str, str] = {}
    # (series-key) -> list of (le, value) for bucket monotonicity checks
    buckets: Dict[Tuple, List[Tuple[float, float]]] = {}
    counts: Dict[Tuple, float] = {}

    def family_of(sample_name: str) -> Optional[str]:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)]
            if sample_name.endswith(suffix) and types.get(base) == "histogram":
                return base
        return sample_name if sample_name in types else None

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            raise ValueError(f"line {lineno}: blank line in exposition")
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram",
            ):
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            if parts[2] in types:
                raise ValueError(
                    f"line {lineno}: duplicate TYPE for {parts[2]}"
                )
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unknown comment: {line!r}")
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        value_text = match.group("value")
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value {value_text!r}"
            ) from None
        labels = _split_labels(match.group("labels") or "")
        base = family_of(name)
        if base is None:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no # TYPE declaration"
            )
        if types[base] == "histogram" and name == base + "_bucket":
            le = dict(labels).get("le")
            if le is None:
                raise ValueError(f"line {lineno}: _bucket without le label")
            rest = tuple(p for p in labels if p[0] != "le")
            buckets.setdefault((base, rest), []).append(
                (float("inf") if le == "+Inf" else float(le), value)
            )
        if types[base] == "histogram" and name == base + "_count":
            counts[(base, tuple(labels))] = value

    for (base, rest), series in buckets.items():
        in_order = sorted(series)
        if in_order != series:
            raise ValueError(f"{base}: buckets not in le order for {rest}")
        values = [v for _le, v in series]
        if values != sorted(values):
            raise ValueError(f"{base}: bucket counts not cumulative ({rest})")
        last_le, last_value = series[-1]
        if last_le != float("inf"):
            raise ValueError(f"{base}: missing le=\"+Inf\" bucket ({rest})")
        total = counts.get((base, rest))
        if total is not None and total != last_value:
            raise ValueError(
                f"{base}: +Inf bucket {last_value} != _count {total} ({rest})"
            )
    return types
