"""IEEE 802.11-like CSMA/CA MAC for broadcast frames.

Broadcast frames in 802.11 DCF use carrier sensing, DIFS deferral and random
backoff, but **no RTS/CTS, no acknowledgement and no retransmission** -- the
exact regime whose deficiencies (Section 2.2.3 of the paper) produce the
broadcast storm.
"""

from repro.mac.csma import CsmaCaMac, MacFrameHandle, MacReceiver, MacStats

__all__ = ["CsmaCaMac", "MacFrameHandle", "MacReceiver", "MacStats"]
