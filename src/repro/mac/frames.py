"""MAC-layer frame envelopes.

The channel is payload-agnostic; the MAC wraps upper-layer packets in a
:class:`DataFrame` (broadcast when ``dst is None``) and acknowledges
unicast data with :class:`AckFrame`.  Broadcast frames are never
acknowledged (IEEE 802.11 forbids it -- the paper's Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["DataFrame", "AckFrame", "ACK_SIZE_BYTES"]

#: IEEE 802.11 ACK frame body size.
ACK_SIZE_BYTES = 14


@dataclass(frozen=True)
class DataFrame:
    """A data frame on the air.  ``dst is None`` means broadcast.

    ``mac_seq`` models the 802.11 Sequence Control field: retransmissions
    of a unicast frame reuse the sequence number, letting the receiver ACK
    but not re-deliver duplicates caused by lost ACKs.
    """

    src: int
    dst: Optional[int]
    payload: Any
    size_bytes: int
    mac_seq: int = 0

    @property
    def is_broadcast(self) -> bool:
        return self.dst is None


@dataclass(frozen=True)
class AckFrame:
    """Acknowledgement for a unicast data frame."""

    src: int  # the acknowledging host (the data frame's receiver)
    dst: int  # the data frame's sender
    size_bytes: int = ACK_SIZE_BYTES
