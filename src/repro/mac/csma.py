"""Per-host CSMA/CA distributed coordination function.

Broadcast behaviour (DCF, IEEE Std 802.11-1997, the paper's regime):

- A frame arriving at an idle MAC whose medium has been idle for at least
  DIFS is transmitted immediately; if the idle period is shorter, the MAC
  must go through the random backoff procedure.
- A frame arriving while the medium is busy (or while a backoff is pending)
  is queued; access then always uses random backoff.
- The backoff counter is drawn uniformly from ``[0, CW]`` and counts down
  one slot at a time while the medium is idle after a DIFS; it freezes when
  the medium goes busy and resumes (not redraws) on the next idle DIFS.
- After **every** transmission the MAC performs a post-transmission backoff,
  even with an empty queue.
- Broadcast frames are never acknowledged or retransmitted and never grow
  the contention window.

Unicast behaviour (used by the routing substrate, not by the paper's
broadcast schemes):

- Unicast data frames are acknowledged by the receiver one SIFS after
  reception (ACKs do not contend for the medium; SIFS < DIFS gives them
  priority).
- A sender missing the ACK retries with a doubled contention window
  (up to ``cw_max``), at most ``retry_limit`` retransmissions, then reports
  failure.  The contention window resets on success or final failure.

The scheme layer interacts through :meth:`CsmaCaMac.send`, which returns a
:class:`MacFrameHandle`; the paper's scheme step S5 ("cancel the
transmission of P") maps to :meth:`MacFrameHandle.cancel`, legal any time
before the frame is on the air, and scheme step S3 ("packet P is on the
air") maps to the handle's ``on_transmit_start`` callback.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional

from repro.mac.frames import AckFrame, DataFrame
from repro.phy.channel import Channel, RadioListener
from repro.phy.params import PhyParams
from repro.sim.engine import Event, Scheduler
from repro.trace.recorder import frame_ident

__all__ = ["CsmaCaMac", "MacFrameHandle", "MacReceiver", "MacStats"]

#: Maximum retransmissions of a unicast frame (802.11 short retry limit).
DEFAULT_RETRY_LIMIT = 7


class MacReceiver:
    """Upper-layer interface a host implements to receive from its MAC."""

    def on_frame_received(self, frame: Any, sender_id: int) -> None:
        raise NotImplementedError

    def on_frame_corrupted(self, frame: Any, sender_id: int) -> None:
        """Optional: a frame was heard but garbled."""

    #: Set to ``False`` on receivers whose ``on_frame_corrupted`` is a
    #: no-op: the MAC then skips the upcall entirely (it fires once per
    #: garbled frame per receiver -- the hottest callback in a storm).
    #: MAC-level corruption counters are maintained either way.
    handles_corrupted_frames: bool = True


class MacStats:
    """Per-host MAC counters (a ``__slots__`` class; these are bumped on
    every frame event)."""

    __slots__ = (
        "frames_sent", "broadcast_frames_sent", "unicast_frames_sent",
        "frames_cancelled", "frames_flushed", "frames_received",
        "frames_corrupted", "backoffs_started", "unicast_attempts",
        "unicast_delivered", "unicast_failed", "retries", "acks_sent",
        "acks_suppressed", "overheard", "duplicates_filtered",
    )

    def __init__(self) -> None:
        self.frames_sent = 0
        self.broadcast_frames_sent = 0
        self.unicast_frames_sent = 0
        self.frames_cancelled = 0
        self.frames_flushed = 0  # queued frames discarded by a crash/shutdown
        self.frames_received = 0
        self.frames_corrupted = 0
        self.backoffs_started = 0
        self.unicast_attempts = 0
        self.unicast_delivered = 0
        self.unicast_failed = 0
        self.retries = 0
        self.acks_sent = 0
        self.acks_suppressed = 0  # could not ACK (was transmitting)
        self.overheard = 0  # unicast frames addressed to someone else
        self.duplicates_filtered = 0  # retransmissions not re-delivered

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MacStats):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in self.__slots__
        )

    __hash__ = None  # mutable counters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self.__slots__
        )
        return f"MacStats({fields})"


class MacFrameHandle:
    """A queued frame; lets the sender cancel it before it is on the air."""

    __slots__ = (
        "frame", "size_bytes", "dst", "on_transmit_start", "on_complete",
        "cancelled", "transmitted", "attempts", "mac_seq",
    )

    def __init__(
        self,
        frame: Any,
        size_bytes: int,
        dst: Optional[int],
        on_transmit_start: Optional[Callable[[], None]],
        on_complete: Optional[Callable[[bool], None]] = None,
    ) -> None:
        self.frame = frame
        self.size_bytes = size_bytes
        self.dst = dst
        self.on_transmit_start = on_transmit_start
        self.on_complete = on_complete
        self.cancelled = False
        self.transmitted = False
        self.attempts = 0
        self.mac_seq = 0

    @property
    def is_unicast(self) -> bool:
        return self.dst is not None

    def cancel(self) -> bool:
        """Withdraw the frame.  Returns ``True`` if it had not yet started
        transmitting (i.e. the cancellation took effect)."""
        if self.transmitted:
            return False
        self.cancelled = True
        return True


class CsmaCaMac(RadioListener):
    """One host's MAC entity."""

    __slots__ = (
        "host_id", "_scheduler", "_channel", "_params", "_rng", "_receiver",
        "_retry_limit", "stats", "_queue", "_transmitting", "_others_busy",
        "_others_idle_since", "_last_tx_end", "_cw", "_backoff_remaining",
        "_countdown_base", "_access_event", "_awaiting_ack",
        "_ack_timeout_event", "_tx_done_event", "_pending_ack_txs", "_dead",
        "_tx_seq", "_last_rx_seq", "_difs", "_slot_time", "_sifs",
        "_airtime_cache", "_ack_airtime", "_ack_timeout_delay",
        "_notify_corrupt", "_trace",
    )

    def __init__(
        self,
        host_id: int,
        scheduler: Scheduler,
        channel: Channel,
        params: PhyParams,
        rng: random.Random,
        receiver: MacReceiver,
        retry_limit: int = DEFAULT_RETRY_LIMIT,
        trace: Optional[Any] = None,
    ) -> None:
        self.host_id = host_id
        self._scheduler = scheduler
        self._channel = channel
        self._params = params
        self._rng = rng
        self._receiver = receiver
        self._retry_limit = retry_limit
        self._trace = trace
        self.stats = MacStats()

        # PhyParams is frozen: hoist the per-event timing constants and
        # precompute frame airtimes (the same few sizes recur all run).
        self._difs = params.difs
        self._slot_time = params.slot_time
        self._sifs = params.sifs
        self._airtime_cache: Dict[int, float] = {}
        self._ack_airtime = params.airtime(AckFrame.size_bytes)
        self._ack_timeout_delay = (
            params.sifs + self._ack_airtime + 2 * params.slot_time
        )
        self._notify_corrupt = getattr(
            receiver, "handles_corrupted_frames", True
        )

        self._queue: Deque[MacFrameHandle] = deque()
        self._transmitting = False
        self._others_busy = False
        self._others_idle_since = 0.0
        self._last_tx_end = 0.0
        self._cw = params.cw_min
        self._backoff_remaining: Optional[int] = None
        self._countdown_base: Optional[float] = None
        self._access_event: Optional[Event] = None
        self._awaiting_ack: Optional[MacFrameHandle] = None
        self._ack_timeout_event: Optional[Event] = None
        self._tx_done_event: Optional[Event] = None
        self._pending_ack_txs: list = []  # scheduled SIFS->ACK events
        self._dead = False
        self._tx_seq = 0
        #: Last delivered unicast mac_seq per sender (duplicate detection).
        self._last_rx_seq: dict = {}

        channel.attach(host_id, self)

    # ------------------------------------------------------------------ API

    def send(
        self,
        frame: Any,
        size_bytes: int,
        on_transmit_start: Optional[Callable[[], None]] = None,
    ) -> MacFrameHandle:
        """Queue ``frame`` for **broadcast** transmission.

        ``on_transmit_start`` fires at the instant the frame goes on the air
        (the scheme's "transmission actually starts").  The returned handle
        supports :meth:`MacFrameHandle.cancel`.
        """
        handle = MacFrameHandle(frame, size_bytes, None, on_transmit_start)
        return self._enqueue(handle)

    def send_unicast(
        self,
        frame: Any,
        size_bytes: int,
        dst: int,
        on_complete: Optional[Callable[[bool], None]] = None,
        on_transmit_start: Optional[Callable[[], None]] = None,
    ) -> MacFrameHandle:
        """Queue ``frame`` for acknowledged unicast transmission to ``dst``.

        ``on_complete(success)`` fires when the frame is ACKed or finally
        dropped after the retry limit.
        """
        if dst == self.host_id:
            raise ValueError("unicast to self")
        handle = MacFrameHandle(
            frame, size_bytes, dst, on_transmit_start, on_complete
        )
        self.stats.unicast_attempts += 1
        return self._enqueue(handle)

    def _enqueue(self, handle: MacFrameHandle) -> MacFrameHandle:
        if self._dead:
            raise RuntimeError(f"host {self.host_id}: MAC is shut down")
        self._tx_seq += 1
        handle.mac_seq = self._tx_seq
        if self._trace is not None:
            kind, src, seq, _hops = frame_ident(handle.frame)
            self._trace.records.append((
                self._scheduler._now, "mac-enqueue", self.host_id, kind,
                src, seq,
            ))
        self._queue.append(handle)
        if (
            self._transmitting
            or self._access_event is not None
            or self._awaiting_ack is not None
        ):
            return handle
        if self._others_busy:
            # Deferred arrival: access must use the backoff procedure.
            if self._backoff_remaining is None:
                self._backoff_remaining = self._draw_backoff()
            return handle
        if self._backoff_remaining is None:
            idle_since = self._others_idle_since
            last_end = self._last_tx_end
            idle_base = idle_since if idle_since >= last_end else last_end
            if self._scheduler._now - idle_base >= self._difs:
                # Medium already idle >= DIFS: immediate access.
                self._start_transmission()
                return handle
            # Idle but not yet for a full DIFS: per DCF the station must
            # go through the random backoff procedure.
            self._backoff_remaining = self._draw_backoff()
        self._maybe_resume()
        return handle

    @property
    def queue_length(self) -> int:
        """Frames waiting (cancelled husks excluded)."""
        return sum(1 for h in self._queue if not h.cancelled)

    @property
    def is_transmitting(self) -> bool:
        return self._transmitting

    @property
    def contention_window(self) -> int:
        """Current CW (grows on unicast retries, resets on resolution)."""
        return self._cw

    @property
    def is_shut_down(self) -> bool:
        return self._dead

    # ------------------------------------------------- crash / recover

    def shutdown(self) -> None:
        """Power the radio off (host crash).

        Aborts any in-flight transmission at the channel, cancels every
        pending MAC event (access, ACK timeout, tx-done, queued SIFS->ACK
        responses), flushes the queue -- unicast frames report failure to
        their ``on_complete`` -- and detaches from the channel.  Idempotent.
        """
        if self._dead:
            return
        self._dead = True
        if self._transmitting:
            self._channel.abort_transmission(self.host_id)
            self._transmitting = False
        for event in (
            self._access_event, self._ack_timeout_event, self._tx_done_event,
        ):
            if event is not None:
                event.cancel()
        self._access_event = None
        self._ack_timeout_event = None
        self._tx_done_event = None
        for event in self._pending_ack_txs:
            event.cancel()
        self._pending_ack_txs.clear()
        pending = list(self._queue)
        if self._awaiting_ack is not None:
            pending.append(self._awaiting_ack)
            self._awaiting_ack = None
        self._queue.clear()
        for handle in pending:
            if handle.cancelled:
                continue
            self.stats.frames_flushed += 1
            if handle.is_unicast and handle.on_complete is not None:
                handle.on_complete(False)
        self._backoff_remaining = None
        self._countdown_base = None
        self._others_busy = False
        self._cw = self._params.cw_min
        self._channel.detach(self.host_id)

    def restart(self) -> None:
        """Power the radio back on after :meth:`shutdown` (host recovery).

        Re-attaches to the channel with a clean slate: empty queue, fresh
        contention state, and the medium assumed idle as of now (frames
        already in flight froze their receiver sets at tx-start, so the
        re-attached radio hears nothing until the next frame begins --
        exactly like a station that just powered on mid-frame).
        """
        if not self._dead:
            raise RuntimeError(f"host {self.host_id}: MAC is not shut down")
        self._dead = False
        self._channel.attach(self.host_id, self)
        now = self._scheduler.now
        self._others_busy = False
        self._others_idle_since = now
        self._last_tx_end = now

    # --------------------------------------------------- channel callbacks

    def on_medium_state(self, busy: bool) -> None:
        # Fires on every carrier edge at every in-range host; the common
        # cases (no pending access / nothing queued) return without a call.
        if busy:
            self._others_busy = True
            if self._access_event is not None:
                # _freeze(), inlined minus its redundant None re-check.
                self._access_event.cancel()
                self._access_event = None
                remaining = self._backoff_remaining
                if remaining is not None and self._countdown_base is not None:
                    elapsed = self._scheduler._now - self._countdown_base
                    consumed = math.floor(elapsed / self._slot_time)
                    if consumed > 0:
                        remaining -= consumed
                        self._backoff_remaining = (
                            remaining if remaining > 0 else 0
                        )
                self._countdown_base = None
                if self._trace is not None:
                    self._trace.records.append((
                        self._scheduler._now, "mac-freeze", self.host_id,
                        self._backoff_remaining,
                    ))
        else:
            self._others_busy = False
            now = self._scheduler._now
            self._others_idle_since = now
            if (
                self._transmitting
                or self._access_event is not None
                or self._awaiting_ack is not None
            ):
                return
            # Specialized _maybe_resume: on an idle edge the idle base is
            # exactly ``now`` (``_others_idle_since == now`` and
            # ``_last_tx_end <= now``), so the DIFS deadline needs no
            # max() clamps.
            remaining = self._backoff_remaining
            if remaining is None:
                for handle in self._queue:
                    if not handle.cancelled:
                        break
                else:
                    return
                self._access_event = self._scheduler.schedule_at(
                    now + self._difs, self._access_fire
                )
                return
            base = now + self._difs
            self._countdown_base = base
            self._access_event = self._scheduler.schedule_at(
                base + remaining * self._slot_time, self._access_fire
            )

    def on_frame_received(self, frame: Any, sender_id: int) -> None:
        if isinstance(frame, AckFrame):
            if frame.dst == self.host_id:
                self._ack_received(sender_id)
            return
        if isinstance(frame, DataFrame):
            if frame.is_broadcast:
                self.stats.frames_received += 1
                self._receiver.on_frame_received(frame.payload, frame.src)
            elif frame.dst == self.host_id:
                # Always ACK; deliver only if not a retransmission we have
                # already passed up (802.11 duplicate detection).
                self._schedule_ack(frame.src)
                if self._last_rx_seq.get(frame.src, 0) >= frame.mac_seq:
                    self.stats.duplicates_filtered += 1
                    return
                self._last_rx_seq[frame.src] = frame.mac_seq
                self.stats.frames_received += 1
                self._receiver.on_frame_received(frame.payload, frame.src)
            else:
                self.stats.overheard += 1
            return
        # Raw (non-enveloped) frame, e.g. injected directly in tests.
        self.stats.frames_received += 1
        self._receiver.on_frame_received(frame, sender_id)

    def on_frame_corrupted(self, frame: Any, sender_id: int) -> None:
        self.stats.frames_corrupted += 1
        if not self._notify_corrupt or isinstance(frame, AckFrame):
            return
        payload = frame.payload if isinstance(frame, DataFrame) else frame
        self._receiver.on_frame_corrupted(payload, sender_id)

    # ------------------------------------------------------------ internals

    def _airtime(self, size_bytes: int) -> float:
        """Frame airtime, memoized per size (the same few sizes recur)."""
        cache = self._airtime_cache
        duration = cache.get(size_bytes)
        if duration is None:
            duration = cache[size_bytes] = self._params.airtime(size_bytes)
        return duration

    def _draw_backoff(self) -> int:
        self.stats.backoffs_started += 1
        slots = self._rng.randint(0, self._cw)
        if self._trace is not None:
            self._trace.records.append((
                self._scheduler._now, "mac-backoff", self.host_id, slots,
                self._cw,
            ))
        return slots

    def _freeze(self) -> None:
        """Medium went busy: cancel pending access, bank elapsed slots."""
        event = self._access_event
        if event is None:
            return
        event.cancel()
        self._access_event = None
        if self._backoff_remaining is not None and self._countdown_base is not None:
            elapsed = self._scheduler._now - self._countdown_base
            consumed = math.floor(elapsed / self._slot_time)
            if consumed > 0:
                remaining = self._backoff_remaining - consumed
                self._backoff_remaining = remaining if remaining > 0 else 0
        self._countdown_base = None
        if self._trace is not None:
            self._trace.records.append((
                self._scheduler._now, "mac-freeze", self.host_id,
                self._backoff_remaining,
            ))

    def _maybe_resume(self) -> None:
        """Schedule the next access completion if the medium allows it."""
        if (
            self._transmitting
            or self._access_event is not None
            or self._awaiting_ack is not None
        ):
            return
        if self._others_busy:
            return
        idle_since = self._others_idle_since
        last_end = self._last_tx_end
        idle_base = idle_since if idle_since >= last_end else last_end
        now = self._scheduler._now
        if self._backoff_remaining is None:
            # No pending backoff: only initial DIFS access for a queued
            # frame.  (Loop instead of the queue_length property: this is
            # hot and the queue is usually empty or tiny.)
            for handle in self._queue:
                if not handle.cancelled:
                    break
            else:
                return
            fire_at = idle_base + self._difs
            if fire_at < now:
                fire_at = now
            self._access_event = self._scheduler.schedule_at(
                fire_at, self._access_fire
            )
            return
        base = idle_base + self._difs
        self._countdown_base = base
        fire_at = base + self._backoff_remaining * self._slot_time
        if fire_at < now:
            fire_at = now
        self._access_event = self._scheduler.schedule_at(fire_at, self._access_fire)

    def _access_fire(self) -> None:
        self._access_event = None
        self._backoff_remaining = None
        self._countdown_base = None
        self._start_transmission()

    def _start_transmission(self) -> None:
        if self._transmitting:
            # An ACK response grabbed the radio; retry once it is done.
            return
        while self._queue and self._queue[0].cancelled:
            self._queue.popleft()
            self.stats.frames_cancelled += 1
        if not self._queue:
            return
        handle = self._queue.popleft()
        first_attempt = not handle.transmitted
        handle.transmitted = True
        handle.attempts += 1
        self._transmitting = True
        self.stats.frames_sent += 1
        if handle.is_unicast:
            self.stats.unicast_frames_sent += 1
        else:
            self.stats.broadcast_frames_sent += 1
        duration = self._airtime(handle.size_bytes)
        if first_attempt and handle.on_transmit_start is not None:
            handle.on_transmit_start()
        envelope = DataFrame(
            src=self.host_id,
            dst=handle.dst,
            payload=handle.frame,
            size_bytes=handle.size_bytes,
            mac_seq=handle.mac_seq,
        )
        self._channel.start_transmission(self.host_id, envelope, duration)
        self._tx_done_event = self._scheduler.schedule(
            duration, self._tx_done, handle
        )

    def _tx_done(self, handle: MacFrameHandle) -> None:
        self._tx_done_event = None
        self._transmitting = False
        self._last_tx_end = self._scheduler._now
        if handle.is_unicast:
            self._await_ack(handle)
            return
        self._backoff_remaining = self._draw_backoff()
        self._maybe_resume()

    # ------------------------------------------------------------- unicast

    def _ack_timeout_interval(self) -> float:
        return self._ack_timeout_delay

    def _await_ack(self, handle: MacFrameHandle) -> None:
        self._awaiting_ack = handle
        self._ack_timeout_event = self._scheduler.schedule(
            self._ack_timeout_interval(), self._ack_timeout
        )

    def _ack_received(self, acker_id: int) -> None:
        handle = self._awaiting_ack
        if handle is None or handle.dst != acker_id:
            return
        self._awaiting_ack = None
        if self._ack_timeout_event is not None:
            self._ack_timeout_event.cancel()
            self._ack_timeout_event = None
        self.stats.unicast_delivered += 1
        self._cw = self._params.cw_min
        if handle.on_complete is not None:
            handle.on_complete(True)
        self._backoff_remaining = self._draw_backoff()
        self._maybe_resume()

    def _ack_timeout(self) -> None:
        handle = self._awaiting_ack
        self._awaiting_ack = None
        self._ack_timeout_event = None
        if handle is None:
            return
        if handle.attempts > self._retry_limit:
            self.stats.unicast_failed += 1
            self._cw = self._params.cw_min
            if handle.on_complete is not None:
                handle.on_complete(False)
        else:
            self.stats.retries += 1
            self._cw = min(2 * self._cw + 1, self._params.cw_max)
            self._queue.appendleft(handle)
        self._backoff_remaining = self._draw_backoff()
        self._maybe_resume()

    def _schedule_ack(self, dst: int) -> None:
        event = self._scheduler.schedule(
            self._sifs, self._transmit_ack, dst
        )
        self._pending_ack_txs.append(event)

    def _transmit_ack(self, dst: int) -> None:
        self._pending_ack_txs = [
            e for e in self._pending_ack_txs if not e.cancelled and e.time
            > self._scheduler.now
        ]
        if self._dead:
            return
        if self._transmitting:
            # Radio busy with our own frame: the ACK is lost (the sender
            # will retry).  Rare, but physically accurate for half-duplex.
            self.stats.acks_suppressed += 1
            return
        # The ACK preempts normal access (SIFS < DIFS); cancel any pending
        # access attempt and resume contention after the ACK is out.
        self._freeze()
        self._transmitting = True
        self.stats.acks_sent += 1
        ack = AckFrame(src=self.host_id, dst=dst)
        duration = self._ack_airtime
        self._channel.start_transmission(self.host_id, ack, duration)
        self._tx_done_event = self._scheduler.schedule(
            duration, self._ack_tx_done
        )

    def _ack_tx_done(self) -> None:
        self._tx_done_event = None
        self._transmitting = False
        self._last_tx_end = self._scheduler.now
        self._maybe_resume()
