"""Executes a :class:`~repro.faults.plan.FaultPlan` against a live network.

The injector is a simulation process: :meth:`FaultInjector.install`
schedules every explicit event, expands the churn process into concrete
crash/recover pairs using the dedicated fault RNG substream (so mobility,
MAC and scheme streams are untouched and stay identical across schemes),
and composes the plan's link-loss model onto the channel's existing
``drop_predicate``.  Every executed event is appended to ``trace`` -- with a
fixed seed the trace is byte-for-byte reproducible.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional

from repro.faults.loss import make_loss_model
from repro.faults.plan import FaultPlan
from repro.metrics.collector import FaultEventRecord
from repro.net.network import Network
from repro.sim.engine import Scheduler
from repro.sim.randomness import RandomStreams

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules and executes the fault events of one simulation run."""

    def __init__(
        self,
        scheduler: Scheduler,
        network: Network,
        plan: FaultPlan,
        streams: RandomStreams,
        horizon: Optional[float] = None,
        trace_recorder: Optional[Any] = None,
    ) -> None:
        """``streams`` must be a fault-dedicated stream factory (the runner
        passes ``master_streams.fork("faults")``); ``horizon`` bounds churn
        expansion (defaults to the churn process's own ``stop``);
        ``trace_recorder`` is an optional :class:`repro.trace.TraceRecorder`
        that additionally gets one ``fault`` record per executed event."""
        self._scheduler = scheduler
        self._network = network
        self.plan = plan
        self._streams = streams
        self._horizon = horizon
        self._trace_recorder = trace_recorder
        self.loss_model = None
        #: Executed fault events, in execution order.
        self.trace: List[FaultEventRecord] = []

    # ------------------------------------------------------------- setup

    def install(self) -> None:
        """Schedule the plan's events and arm the loss model."""
        if self.plan.loss is not None:
            self.loss_model = make_loss_model(
                self.plan.loss, self._streams.fork("loss")
            )
            channel = self._network.channel
            base = channel.drop_predicate
            loss = self.loss_model
            if base is None:
                channel.drop_predicate = loss.should_drop
            else:
                channel.drop_predicate = (
                    lambda s, r: base(s, r) or loss.should_drop(s, r)
                )
        for crash in self.plan.crashes:
            self._scheduler.schedule_at(crash.time, self._crash, crash.host_id)
            if crash.recover_at is not None:
                self._scheduler.schedule_at(
                    crash.recover_at, self._recover, crash.host_id
                )
        for mute in self.plan.mutes:
            self._scheduler.schedule_at(
                mute.time, self._mute, mute.host_id, mute.until
            )
        if self.plan.churn is not None and self.plan.churn.rate > 0.0:
            self._expand_churn()

    def _expand_churn(self) -> None:
        """Turn the churn process into concrete crash/recover pairs.

        All draws happen here, eagerly and in host-id order, so the churn
        trace depends only on the fault substream -- not on anything the
        simulation does later.
        """
        churn = self.plan.churn
        stop = churn.stop
        if math.isinf(stop):
            if self._horizon is None:
                raise ValueError(
                    "unbounded churn process needs an explicit horizon"
                )
            stop = self._horizon
        rng = self._streams.stream("churn")
        for host in self._network.hosts:
            t = churn.start
            while True:
                t += rng.expovariate(churn.rate)
                if t >= stop:
                    break
                self._scheduler.schedule_at(t, self._crash, host.host_id)
                recover_at = t + churn.downtime
                self._scheduler.schedule_at(
                    recover_at, self._recover, host.host_id
                )
                t = recover_at

    # ----------------------------------------------------------- execution

    def _record(self, kind: str, host_id: int) -> None:
        entry = FaultEventRecord(self._scheduler.now, kind, host_id)
        self.trace.append(entry)
        if self._trace_recorder is not None:
            self._trace_recorder.records.append(
                (self._scheduler.now, "fault", kind, host_id)
            )

    def _crash(self, host_id: int) -> None:
        host = self._network.hosts[host_id]
        if not host.alive:
            return  # overlapping plans: already down
        self._network.crash_host(host_id)
        self._record("crash", host_id)

    def _recover(self, host_id: int) -> None:
        host = self._network.hosts[host_id]
        if host.alive:
            return
        self._network.recover_host(host_id)
        self._record("recover", host_id)

    def _mute(self, host_id: int, until: float) -> None:
        host = self._network.hosts[host_id]
        host.suppress_hellos(until)
        self._network.metrics.on_hello_mute(host_id, self._scheduler.now)
        self._record("hello-mute", host_id)
