"""Stateful link-loss processes, composable with ``Channel.drop_predicate``.

Both models expose ``should_drop(sender_id, receiver_id) -> bool``, the same
signature the channel consults once per (frame, in-range receiver).  Each
directed link draws from its own deterministic RNG substream (derived from
the fault seed and the link identity), so the loss pattern on link A->B does
not depend on how many frames crossed link C->D -- the per-link sequences
are reproducible even when scheme behaviour changes traffic elsewhere.
"""

from __future__ import annotations

from typing import Dict, Tuple

import random

from repro.faults.plan import BernoulliLossSpec, GilbertElliottLossSpec
from repro.sim.randomness import RandomStreams

__all__ = ["BernoulliLoss", "GilbertElliottLoss", "make_loss_model"]


class BernoulliLoss:
    """Memoryless per-frame loss with probability ``p`` on every link."""

    def __init__(self, spec: BernoulliLossSpec, streams: RandomStreams) -> None:
        self.spec = spec
        self._streams = streams
        self._rngs: Dict[Tuple[int, int], random.Random] = {}

    def _rng(self, sender_id: int, receiver_id: int) -> random.Random:
        key = (sender_id, receiver_id)
        rng = self._rngs.get(key)
        if rng is None:
            rng = self._streams.stream(f"link/{sender_id}->{receiver_id}")
            self._rngs[key] = rng
        return rng

    def should_drop(self, sender_id: int, receiver_id: int) -> bool:
        if self.spec.p <= 0.0:
            return False
        return self._rng(sender_id, receiver_id).random() < self.spec.p


class GilbertElliottLoss:
    """Per-link two-state burst-loss chain (Gilbert-Elliott).

    The chain advances once per frame observed on the link; state persists
    between frames, which is what makes losses come in bursts.  A link's
    chain starts in the good state.
    """

    def __init__(
        self, spec: GilbertElliottLossSpec, streams: RandomStreams
    ) -> None:
        self.spec = spec
        self._streams = streams
        self._rngs: Dict[Tuple[int, int], random.Random] = {}
        self._bad: Dict[Tuple[int, int], bool] = {}

    def _rng(self, sender_id: int, receiver_id: int) -> random.Random:
        key = (sender_id, receiver_id)
        rng = self._rngs.get(key)
        if rng is None:
            rng = self._streams.stream(f"link/{sender_id}->{receiver_id}")
            self._rngs[key] = rng
        return rng

    def link_state(self, sender_id: int, receiver_id: int) -> str:
        """Current chain state of the directed link (for tests)."""
        return "bad" if self._bad.get((sender_id, receiver_id)) else "good"

    def should_drop(self, sender_id: int, receiver_id: int) -> bool:
        key = (sender_id, receiver_id)
        rng = self._rng(sender_id, receiver_id)
        bad = self._bad.get(key, False)
        # Advance the chain one step, then sample loss in the new state.
        if bad:
            if rng.random() < self.spec.r:
                bad = False
        else:
            if rng.random() < self.spec.p:
                bad = True
        self._bad[key] = bad
        loss_p = self.spec.loss_bad if bad else self.spec.loss_good
        if loss_p <= 0.0:
            return False
        if loss_p >= 1.0:
            return True
        return rng.random() < loss_p


def make_loss_model(spec, streams: RandomStreams):
    """Instantiate the right loss model for a plan's loss spec."""
    if isinstance(spec, BernoulliLossSpec):
        return BernoulliLoss(spec, streams)
    if isinstance(spec, GilbertElliottLossSpec):
        return GilbertElliottLoss(spec, streams)
    raise TypeError(f"unknown loss spec {spec!r}")
