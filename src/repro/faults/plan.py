"""Declarative, seedable fault schedules.

A :class:`FaultPlan` is pure data: explicit timed events (crash, recover,
hello-mute), an optional random host-churn process, and an optional link-loss
model (Bernoulli or Gilbert-Elliott).  It carries no simulation state, so it
can be serialized (JSON round-trip), embedded in a
:class:`~repro.experiments.config.ScenarioConfig`, and parsed from a compact
CLI spec string.  Execution -- including expanding the churn process into
concrete crash/recover events from a dedicated RNG substream -- is the
:class:`~repro.faults.injector.FaultInjector`'s job.

Spec syntax (clauses separated by ``;``)::

    crash:host=3,at=5,recover=12       one host down from t=5 to t=12
    crash:host=3,at=5                  ... down forever
    mute:host=1,at=2,until=8           suppress host 1's HELLOs in [2, 8)
    churn:rate=0.01,downtime=5         each alive host crashes as a Poisson
                                       process (per-host rate/s), down 5 s
    churn:rate=0.01,downtime=5,start=10,stop=60
    loss:p=0.1                         Bernoulli link loss, 10 % per frame
    ge:p=0.05,r=0.5,bad=0.8            Gilbert-Elliott burst loss
    ge:p=0.05,r=0.5,good=0.01,bad=0.8

``@path.json`` instead of clauses loads a JSON file with the
:meth:`FaultPlan.to_dict` structure.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "CrashFault",
    "MuteHelloFault",
    "ChurnProcess",
    "BernoulliLossSpec",
    "GilbertElliottLossSpec",
    "FaultPlan",
]


@dataclass(frozen=True)
class CrashFault:
    """Crash ``host_id`` at ``time``; recover at ``recover_at`` (or never)."""

    time: float
    host_id: int
    recover_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"crash time must be >= 0, got {self.time}")
        if self.recover_at is not None and self.recover_at <= self.time:
            raise ValueError(
                f"recover_at {self.recover_at} must be > crash time {self.time}"
            )


@dataclass(frozen=True)
class MuteHelloFault:
    """Suppress ``host_id``'s HELLO transmissions in ``[time, until)``."""

    time: float
    host_id: int
    until: float = math.inf

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"mute time must be >= 0, got {self.time}")
        if self.until <= self.time:
            raise ValueError(
                f"mute until {self.until} must be > start {self.time}"
            )


@dataclass(frozen=True)
class ChurnProcess:
    """Random host churn: independent per-host Poisson crash arrivals.

    While a host is alive inside ``[start, stop)``, its next crash is an
    exponential ``rate`` draw away; each crash lasts ``downtime`` seconds.
    The expansion into concrete events is deterministic given the fault
    RNG substream, so the same seed reproduces the same churn trace.
    """

    rate: float  # per-host crash intensity, 1/s
    downtime: float  # seconds a crashed host stays down
    start: float = 0.0
    stop: float = math.inf

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"churn rate must be >= 0, got {self.rate}")
        if self.downtime <= 0:
            raise ValueError(f"downtime must be > 0, got {self.downtime}")
        if self.stop <= self.start:
            raise ValueError(
                f"churn stop {self.stop} must be > start {self.start}"
            )


@dataclass(frozen=True)
class BernoulliLossSpec:
    """Memoryless per-frame link loss with probability ``p``."""

    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {self.p}")


@dataclass(frozen=True)
class GilbertElliottLossSpec:
    """Two-state (good/bad) per-link burst loss.

    Each directed link runs an independent Gilbert-Elliott chain advanced
    once per frame on that link: from good the link turns bad with
    probability ``p``, from bad it heals with probability ``r``; a frame is
    lost with probability ``loss_good`` in the good state and ``loss_bad``
    in the bad state.  Mean sojourn in the bad state is ``1/r`` frames, so
    smaller ``r`` means burstier loss at the same average rate.
    """

    p: float
    r: float
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def __post_init__(self) -> None:
        for name in ("p", "r", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def stationary_loss(self) -> float:
        """Long-run average loss probability of the chain."""
        if self.p == 0.0 and self.r == 0.0:
            return self.loss_good
        bad_frac = self.p / (self.p + self.r)
        return (1.0 - bad_frac) * self.loss_good + bad_frac * self.loss_bad


LossSpec = Any  # BernoulliLossSpec | GilbertElliottLossSpec


@dataclass(frozen=True)
class FaultPlan:
    """A complete, declarative fault schedule for one simulation."""

    crashes: Tuple[CrashFault, ...] = ()
    mutes: Tuple[MuteHelloFault, ...] = ()
    churn: Optional[ChurnProcess] = None
    loss: Optional[LossSpec] = None

    def is_empty(self) -> bool:
        return not (self.crashes or self.mutes or self.churn or self.loss)

    # -------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        if self.crashes:
            out["crashes"] = [asdict(c) for c in self.crashes]
        if self.mutes:
            out["mutes"] = [
                {**asdict(m), "until": None if math.isinf(m.until) else m.until}
                for m in self.mutes
            ]
        if self.churn is not None:
            churn = asdict(self.churn)
            if math.isinf(churn["stop"]):
                churn["stop"] = None
            out["churn"] = churn
        if isinstance(self.loss, BernoulliLossSpec):
            out["loss"] = {"kind": "bernoulli", **asdict(self.loss)}
        elif isinstance(self.loss, GilbertElliottLossSpec):
            out["loss"] = {"kind": "gilbert-elliott", **asdict(self.loss)}
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        crashes = tuple(
            CrashFault(**c) for c in data.get("crashes", ())
        )
        mutes = tuple(
            MuteHelloFault(
                time=m["time"],
                host_id=m["host_id"],
                until=math.inf if m.get("until") is None else m["until"],
            )
            for m in data.get("mutes", ())
        )
        churn = None
        if "churn" in data:
            raw = dict(data["churn"])
            if raw.get("stop") is None:
                raw["stop"] = math.inf
            churn = ChurnProcess(**raw)
        loss = None
        if "loss" in data:
            raw = dict(data["loss"])
            kind = raw.pop("kind", "bernoulli")
            if kind == "bernoulli":
                loss = BernoulliLossSpec(**raw)
            elif kind == "gilbert-elliott":
                loss = GilbertElliottLossSpec(**raw)
            else:
                raise ValueError(f"unknown loss kind {kind!r}")
        return cls(crashes=crashes, mutes=mutes, churn=churn, loss=loss)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # --------------------------------------------------------- spec parsing

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a CLI spec string (see the module docstring) or ``@file``."""
        spec = spec.strip()
        if spec.startswith("@"):
            with open(spec[1:]) as fh:
                return cls.from_json(fh.read())
        crashes = []
        mutes = []
        churn = None
        loss = None
        for clause in filter(None, (c.strip() for c in spec.split(";"))):
            kind, _, body = clause.partition(":")
            kind = kind.strip().lower()
            kv = _parse_kv(body, clause)
            if kind == "crash":
                crashes.append(
                    CrashFault(
                        time=_need(kv, "at", clause),
                        host_id=int(_need(kv, "host", clause)),
                        recover_at=kv.get("recover"),
                    )
                )
            elif kind == "mute":
                mutes.append(
                    MuteHelloFault(
                        time=_need(kv, "at", clause),
                        host_id=int(_need(kv, "host", clause)),
                        until=kv.get("until", math.inf),
                    )
                )
            elif kind == "churn":
                if churn is not None:
                    raise ValueError("multiple churn clauses")
                churn = ChurnProcess(
                    rate=_need(kv, "rate", clause),
                    downtime=_need(kv, "downtime", clause),
                    start=kv.get("start", 0.0),
                    stop=kv.get("stop", math.inf),
                )
            elif kind == "loss":
                if loss is not None:
                    raise ValueError("multiple loss clauses")
                loss = BernoulliLossSpec(p=_need(kv, "p", clause))
            elif kind == "ge":
                if loss is not None:
                    raise ValueError("multiple loss clauses")
                loss = GilbertElliottLossSpec(
                    p=_need(kv, "p", clause),
                    r=_need(kv, "r", clause),
                    loss_good=kv.get("good", 0.0),
                    loss_bad=kv.get("bad", 1.0),
                )
            else:
                raise ValueError(
                    f"unknown fault clause {kind!r} in {clause!r}; expected "
                    "crash / mute / churn / loss / ge"
                )
        return cls(
            crashes=tuple(crashes), mutes=tuple(mutes), churn=churn, loss=loss
        )


def _parse_kv(body: str, clause: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for item in filter(None, (i.strip() for i in body.split(","))):
        key, sep, value = item.partition("=")
        if not sep:
            raise ValueError(f"expected key=value, got {item!r} in {clause!r}")
        try:
            out[key.strip()] = float(value)
        except ValueError:
            raise ValueError(
                f"non-numeric value {value!r} for {key!r} in {clause!r}"
            ) from None
    return out


def _need(kv: Dict[str, float], key: str, clause: str) -> float:
    if key not in kv:
        raise ValueError(f"missing {key!r} in fault clause {clause!r}")
    return kv[key]
