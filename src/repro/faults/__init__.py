"""Fault injection: host churn, bursty link loss, HELLO suppression.

- :mod:`repro.faults.plan` -- the declarative, serializable
  :class:`~repro.faults.plan.FaultPlan` (what goes wrong, and when).
- :mod:`repro.faults.loss` -- Bernoulli and Gilbert-Elliott link-loss
  processes composable with the channel's ``drop_predicate``.
- :mod:`repro.faults.injector` -- the
  :class:`~repro.faults.injector.FaultInjector` that executes a plan
  against a live network from a dedicated RNG substream.

All fault randomness draws from its own substream, so enabling faults never
perturbs mobility traces, MAC backoffs or scheme jitter -- two schemes under
the same seed still see identical worlds.
"""

from repro.faults.loss import BernoulliLoss, GilbertElliottLoss, make_loss_model
from repro.faults.plan import (
    BernoulliLossSpec,
    ChurnProcess,
    CrashFault,
    FaultPlan,
    GilbertElliottLossSpec,
    MuteHelloFault,
)


def __getattr__(name: str):
    # FaultInjector is loaded lazily (PEP 562): the injector module imports
    # the network/metrics layers, which themselves import low-level modules
    # like repro.faults.plan -- an eager import here would close that cycle
    # during package initialization.
    if name == "FaultInjector":
        from repro.faults.injector import FaultInjector

        return FaultInjector
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "FaultPlan",
    "CrashFault",
    "MuteHelloFault",
    "ChurnProcess",
    "BernoulliLossSpec",
    "GilbertElliottLossSpec",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "make_loss_model",
    "FaultInjector",
]
