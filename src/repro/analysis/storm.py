"""Measured decomposition of the broadcast storm (simulation-side §2.2).

Where :mod:`repro.analysis.coverage` and :mod:`repro.analysis.contention`
reproduce the paper's *analytic* redundancy/contention figures, this module
quantifies the same three phenomena from an actual simulation run:

- **redundancy**: how many copies of each broadcast the average receiving
  host heard beyond the first (every extra copy is EAC-diminished air
  time);
- **contention**: how many rebroadcasts had to defer/back off, proxied by
  MAC backoff entries per transmission;
- **collision**: the fraction of receptions garbled by overlap.

Use::

    result = run_broadcast_simulation(config)
    decomposition = StormDecomposition.from_result(result)
    print(decomposition.describe())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import SimulationResult

__all__ = ["StormDecomposition"]


@dataclass(frozen=True)
class StormDecomposition:
    """The three storm components, measured."""

    #: Mean receptions (clean + garbled) per delivered copy: 1.0 would mean
    #: no redundant copies at all.
    redundancy_factor: float
    #: Fraction of receptions corrupted by overlapping frames.
    collision_fraction: float
    #: MAC backoff procedures per transmission (deferral pressure).
    contention_backoffs_per_tx: float
    transmissions: int
    deliveries: int
    collisions: int

    @classmethod
    def from_result(cls, result: SimulationResult) -> "StormDecomposition":
        stats = result.channel_stats
        receptions = stats.deliveries + stats.collisions
        distinct_receipts = sum(
            record.received_count for record in result.metrics.records.values()
        )
        redundancy = (
            receptions / distinct_receipts if distinct_receipts else 0.0
        )
        collision_fraction = (
            stats.collisions / receptions if receptions else 0.0
        )
        backoffs = result.backoffs_started
        contention = backoffs / stats.transmissions if stats.transmissions else 0.0
        return cls(
            redundancy_factor=redundancy,
            collision_fraction=collision_fraction,
            contention_backoffs_per_tx=contention,
            transmissions=stats.transmissions,
            deliveries=stats.deliveries,
            collisions=stats.collisions,
        )

    def describe(self) -> str:
        return (
            f"redundancy x{self.redundancy_factor:.2f}  "
            f"collisions {self.collision_fraction:.1%}  "
            f"backoffs/tx {self.contention_backoffs_per_tx:.2f}  "
            f"(tx={self.transmissions})"
        )
