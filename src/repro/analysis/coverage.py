"""Expected additional coverage ``EAC(k)`` -- paper Fig. 1.

``EAC(k)`` is the expected area a host's rebroadcast newly covers after the
host has already heard the same broadcast ``k`` times.  The paper obtains it
"by randomly generating k hosts in a host['s] transmission range and
calculating the area covered by the latter excluding those already covered by
the former k hosts".  We do exactly that: the k prior transmitters are drawn
uniformly from the host's radio disk and the uncovered fraction of the host's
own disk is estimated with the deterministic lattice of
:class:`repro.geometry.coverage.DiskSampler`.

Reference values from the figure: ``EAC(1) ~= 0.41 pi r^2`` and
``EAC(k) < 0.05 pi r^2`` for ``k >= 4``.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional

from repro.geometry.coverage import DiskSampler

__all__ = ["expected_additional_coverage", "eac_table"]


def _uniform_point_in_disk(rng: random.Random, radius: float) -> tuple:
    """Uniform point in a disk of ``radius`` centered at the origin."""
    r = radius * math.sqrt(rng.random())
    theta = rng.uniform(0.0, 2.0 * math.pi)
    return (r * math.cos(theta), r * math.sin(theta))


def expected_additional_coverage(
    k: int,
    trials: int = 2000,
    rng: Optional[random.Random] = None,
    sampler: Optional[DiskSampler] = None,
    radius: float = 1.0,
) -> float:
    """Monte-Carlo estimate of ``EAC(k) / (pi r^2)``.

    Args:
        k: number of times the host has already heard the packet (>= 1).
        trials: Monte-Carlo repetitions.
        rng: random source (a fresh ``Random(0)`` if omitted).
        sampler: coverage lattice (shared 512-point sampler if omitted).
        radius: the radio radius; the result is scale-free, the parameter
            exists only to exercise unit handling in tests.

    Returns:
        The expected *fraction* of the host's disk left uncovered, i.e.
        ``EAC(k) / (pi r^2)``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if rng is None:
        rng = random.Random(0)
    if sampler is None:
        sampler = _DEFAULT_SAMPLER
    total = 0.0
    host = (0.0, 0.0)
    for _ in range(trials):
        transmitters = [_uniform_point_in_disk(rng, radius) for _ in range(k)]
        total += sampler.uncovered_fraction(host, radius, transmitters, radius)
    return total / trials


def eac_table(
    max_k: int = 10,
    trials: int = 2000,
    seed: int = 0,
) -> Dict[int, float]:
    """``EAC(k)/(pi r^2)`` for ``k = 1 .. max_k`` (the Fig. 1 series)."""
    rng = random.Random(seed)
    return {
        k: expected_additional_coverage(k, trials=trials, rng=rng)
        for k in range(1, max_k + 1)
    }


_DEFAULT_SAMPLER = DiskSampler(512)
