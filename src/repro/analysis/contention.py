"""Contention-free probabilities ``cf(n, k)`` -- paper Fig. 2.

Setup (Section 2.2.2): host A transmits; ``n`` receivers are uniform in A's
radio disk and all attempt to rebroadcast at around the same time.  Two
receivers *contend* when they are within radio range of each other.  A
receiver is *contention-free* when no other receiver is in its range --
an isolated vertex of the unit-disk graph over the n receivers.

``cf(n, k)`` is the probability that exactly ``k`` of the ``n`` receivers are
contention-free.  Structural facts the paper notes and our tests assert:
``cf(n, n-1) = 0`` (if n-1 vertices are isolated, so is the n-th) and
``cf(n, 0)`` grows past 0.8 once ``n >= 6``.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "contention_free_counts",
    "contention_free_probabilities",
    "count_isolated",
]


def count_isolated(
    points: Sequence[Tuple[float, float]], radius: float
) -> int:
    """Number of points with no other point within ``radius``."""
    rr = radius * radius
    n = len(points)
    contended = [False] * n
    for i in range(n):
        xi, yi = points[i]
        for j in range(i + 1, n):
            dx = xi - points[j][0]
            dy = yi - points[j][1]
            if dx * dx + dy * dy <= rr:
                contended[i] = True
                contended[j] = True
    return contended.count(False)


def contention_free_counts(
    n: int,
    trials: int = 10000,
    rng: Optional[random.Random] = None,
    radius: float = 1.0,
) -> List[int]:
    """Histogram over k of "exactly k contention-free receivers among n".

    Returns a list ``counts`` of length ``n + 1`` where ``counts[k]`` is the
    number of trials with exactly k isolated receivers.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if rng is None:
        rng = random.Random(0)
    counts = [0] * (n + 1)
    two_pi = 2.0 * math.pi
    for _ in range(trials):
        points = []
        for _ in range(n):
            r = radius * math.sqrt(rng.random())
            theta = rng.uniform(0.0, two_pi)
            points.append((r * math.cos(theta), r * math.sin(theta)))
        counts[count_isolated(points, radius)] += 1
    return counts


def contention_free_probabilities(
    n: int,
    trials: int = 10000,
    rng: Optional[random.Random] = None,
) -> Dict[int, float]:
    """``cf(n, k)`` for ``k = 0 .. n`` as probabilities (the Fig. 2 series)."""
    counts = contention_free_counts(n, trials=trials, rng=rng)
    return {k: c / trials for k, c in enumerate(counts)}
