"""Closed-form / quadrature results quoted in paper Section 2.2.

All results are normalized by the disk area ``pi r^2`` and are independent of
``r`` (the integrals are evaluated at ``r = 1``).

- Maximum additional coverage of a single rebroadcast: ``1 - INTC(r)/(pi r^2)
  ~= 0.61`` (at sender distance exactly ``r``).
- Average additional coverage over a uniformly random rebroadcaster inside
  the sender's disk: ``int_0^r (2x/r^2) [pi r^2 - INTC(x)] dx / (pi r^2)
  ~= 0.41``.
- Expected probability that a second random receiver contends with a first:
  ``int_0^r (2x/r^2) INTC(x)/(pi r^2) dx ~= 0.59``.
"""

from __future__ import annotations

import math

from scipy.integrate import quad

from repro.geometry.circles import lens_area

__all__ = [
    "max_additional_coverage_fraction",
    "mean_additional_coverage_fraction",
    "expected_contention_probability",
]


def max_additional_coverage_fraction() -> float:
    """``(pi r^2 - INTC(r)) / (pi r^2)``; the paper's ~0.61 bound."""
    return (math.pi - lens_area(1.0, 1.0)) / math.pi


def mean_additional_coverage_fraction() -> float:
    """Average additional-coverage fraction over a random in-range host.

    The rebroadcaster is uniform in the sender's disk, so its distance has
    density ``2x / r^2`` on ``[0, r]``.  The paper reports ~0.41.
    """

    def integrand(x: float) -> float:
        return 2.0 * x * (math.pi - lens_area(1.0, x)) / math.pi

    value, _abserr = quad(integrand, 0.0, 1.0)
    return value


def expected_contention_probability() -> float:
    """Probability a second uniform in-range host contends with the first.

    Host B is uniform in sender A's disk; a contender C must fall in the
    lens ``S_{A & B}``, with probability ``INTC(x)/(pi r^2)`` where ``x`` is
    the A-B distance.  The paper reports ~59 %.
    """

    def integrand(x: float) -> float:
        return 2.0 * x * lens_area(1.0, x) / math.pi

    value, _abserr = quad(integrand, 0.0, 1.0)
    return value
