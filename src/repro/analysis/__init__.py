"""Analytical models of the broadcast storm (paper Section 2.2).

These are standalone reproductions of the paper's analysis figures:

- :func:`~repro.analysis.coverage.expected_additional_coverage` -- the
  ``EAC(k)`` Monte-Carlo of Fig. 1.
- :func:`~repro.analysis.contention.contention_free_probabilities` -- the
  ``cf(n, k)`` Monte-Carlo of Fig. 2.
- :mod:`~repro.analysis.integrals` -- the closed-form/quadrature results
  quoted in the text (61 % maximum additional coverage, 41 % average
  additional coverage, 59 % expected contention probability).
"""

from repro.analysis.contention import (
    contention_free_counts,
    contention_free_probabilities,
)
from repro.analysis.coverage import (
    eac_table,
    expected_additional_coverage,
)
from repro.analysis.integrals import (
    expected_contention_probability,
    max_additional_coverage_fraction,
    mean_additional_coverage_fraction,
)
from repro.analysis.storm import StormDecomposition

__all__ = [
    "expected_additional_coverage",
    "eac_table",
    "contention_free_probabilities",
    "contention_free_counts",
    "max_additional_coverage_fraction",
    "mean_additional_coverage_fraction",
    "expected_contention_probability",
    "StormDecomposition",
]
