"""Lightweight event tracing.

Tracers receive ``(time, category, **fields)`` records from instrumented
components.  The default :class:`NullTracer` discards everything at near-zero
cost; :class:`RecordingTracer` keeps records for tests and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Tracer", "NullTracer", "RecordingTracer", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace record: a timestamped, categorized bag of fields."""

    time: float
    category: str
    fields: Dict[str, Any]


class Tracer:
    """Tracer interface.  Subclasses override :meth:`emit`."""

    def emit(self, time: float, category: str, **fields: Any) -> None:
        raise NotImplementedError


class NullTracer(Tracer):
    """Discards all records."""

    def emit(self, time: float, category: str, **fields: Any) -> None:
        pass


class RecordingTracer(Tracer):
    """Keeps every record in memory; supports simple filtering."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def emit(self, time: float, category: str, **fields: Any) -> None:
        self.records.append(TraceRecord(time, category, fields))

    def filter(self, category: Optional[str] = None, **field_filters: Any) -> List[TraceRecord]:
        """Records matching ``category`` (if given) and all ``field_filters``."""
        out = []
        for record in self.records:
            if category is not None and record.category != category:
                continue
            if all(record.fields.get(k) == v for k, v in field_filters.items()):
                out.append(record)
        return out

    def count(self, category: Optional[str] = None, **field_filters: Any) -> int:
        """Number of matching records."""
        return len(self.filter(category, **field_filters))

    def clear(self) -> None:
        self.records.clear()
