"""Heap-based discrete-event scheduler.

Time is a ``float`` in **seconds**.  All physical-layer constants in
:mod:`repro.phy` are expressed in seconds as well, so microsecond-scale MAC
timing and second-scale mobility coexist on one clock.

Determinism
-----------
Two events scheduled for the same instant are ordered by ``(time, priority,
sequence)``.  ``sequence`` is a monotonically increasing insertion counter, so
ties fall back to FIFO order.  Given the same seed (see
:class:`repro.sim.randomness.RandomStreams`), a simulation replays exactly.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

__all__ = ["Event", "Scheduler", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling into the past)."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Scheduler.schedule` /
    :meth:`Scheduler.schedule_at`; user code holds on to the returned object
    only if it may need to :meth:`cancel` it.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled", "_sched")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sched: Optional["Scheduler"] = None

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it.

        Cancelling an already-fired or already-cancelled event is a no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._sched is not None:
            self._sched._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.9f} p={self.priority} {name} [{state}]>"


class Scheduler:
    """A minimal, fast discrete-event scheduler.

    Example::

        sched = Scheduler()
        sched.schedule(1.5, print, "fires at t=1.5")
        sched.run()
    """

    #: Heaps smaller than this are never compacted (compaction overhead
    #: would dominate; a few dozen husks are harmless).
    COMPACT_MIN_SIZE = 64

    #: Largest magnitude of a negative delay attributed to float round-off
    #: (e.g. ``deadline - now`` landing at ``-1e-18``) that :meth:`schedule`
    #: silently clamps to 0 instead of raising.
    NEGATIVE_DELAY_EPSILON = 1e-12

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._cancelled_in_queue = 0
        self._compactions = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of queued events, including (not yet reclaimed) cancelled
        husks.  Husks are compacted away whenever they outnumber live
        events on a non-trivial heap, so this stays within 2x the live
        event count (plus :data:`COMPACT_MIN_SIZE`)."""
        return len(self._queue)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled husks currently sitting in the queue."""
        return self._cancelled_in_queue

    @property
    def compactions(self) -> int:
        """How many times the heap has been compacted (husk reclamation)."""
        return self._compactions

    def _note_cancelled(self) -> None:
        """An event still in the queue was cancelled; maybe compact.

        Compaction preserves ``(time, priority, seq)`` order exactly:
        dropping entries and re-heapifying cannot reorder the remaining
        events because ordering is a total order on those keys.
        """
        self._cancelled_in_queue += 1
        if (
            len(self._queue) >= self.COMPACT_MIN_SIZE
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        live = [e for e in self._queue if not e.cancelled]
        heapq.heapify(live)
        self._queue = live
        self._cancelled_in_queue = 0
        self._compactions += 1

    def _pop(self) -> Event:
        """Pop the heap top, keeping the husk accounting consistent."""
        event = heapq.heappop(self._queue)
        event._sched = None
        if event.cancelled:
            self._cancelled_in_queue -= 1
        return event

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation ``time``.

        ``priority`` breaks ties among same-time events (lower fires first).
        Raises :class:`SimulationError` if ``time`` is in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self._now}"
            )
        event = Event(time, priority, next(self._seq), fn, args)
        event._sched = self
        heapq.heappush(self._queue, event)
        return event

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` seconds from now.

        Delays in ``[-NEGATIVE_DELAY_EPSILON, 0)`` -- float round-off from
        expressions like ``deadline - now`` -- are clamped to 0; anything
        more negative is a real bug and raises :class:`SimulationError`.
        """
        if delay < 0:
            if delay >= -self.NEGATIVE_DELAY_EPSILON:
                delay = 0.0
            else:
                raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or ``until`` is reached.

        Returns the final simulation time.  When ``until`` is given and the
        queue still holds later events, the clock is advanced exactly to
        ``until`` (events at ``t == until`` are executed).
        """
        if self._running:
            raise SimulationError("scheduler is already running (reentrant run())")
        self._running = True
        try:
            while self._queue:
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                self._pop()
                if event.cancelled:
                    continue
                self._now = event.time
                self._events_processed += 1
                event.fn(*event.args)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Execute the single next non-cancelled event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        """
        while self._queue:
            event = self._pop()
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            self._pop()
        return self._queue[0].time if self._queue else None
