"""Heap-based discrete-event scheduler.

Time is a ``float`` in **seconds**.  All physical-layer constants in
:mod:`repro.phy` are expressed in seconds as well, so microsecond-scale MAC
timing and second-scale mobility coexist on one clock.

Determinism
-----------
Two events scheduled for the same instant are ordered by ``(time, priority,
sequence)``.  ``sequence`` is a monotonically increasing insertion counter, so
ties fall back to FIFO order.  Given the same seed (see
:class:`repro.sim.randomness.RandomStreams`), a simulation replays exactly.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

__all__ = ["Event", "Scheduler", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling into the past)."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Scheduler.schedule` /
    :meth:`Scheduler.schedule_at`; user code holds on to the returned object
    only if it may need to :meth:`cancel` it.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled", "_sched")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sched: Optional["Scheduler"] = None

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it.

        Cancelling an already-fired or already-cancelled event is a no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._sched is not None:
            self._sched._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        # Field-wise comparison: equivalent to comparing the
        # (time, priority, seq) tuples, without allocating them.  This runs
        # once per heap sift step, i.e. millions of times per simulation.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.9f} p={self.priority} {name} [{state}]>"


class Scheduler:
    """A minimal, fast discrete-event scheduler.

    Example::

        sched = Scheduler()
        sched.schedule(1.5, print, "fires at t=1.5")
        sched.run()
    """

    #: Heaps smaller than this are never compacted (compaction overhead
    #: would dominate; a few dozen husks are harmless).
    COMPACT_MIN_SIZE = 64

    #: Largest magnitude of a negative delay attributed to float round-off
    #: (e.g. ``deadline - now`` landing at ``-1e-18``) that :meth:`schedule`
    #: silently clamps to 0 instead of raising.
    NEGATIVE_DELAY_EPSILON = 1e-12

    __slots__ = (
        "_queue", "_seq", "_now", "_running", "_events_processed",
        "_cancelled_in_queue", "_cancels", "_compactions",
    )

    def __init__(self) -> None:
        # Heap entries are ``(time, priority, seq, event)`` tuples rather
        # than bare events: heap sifts then compare in C (seq is unique, so
        # the comparison never reaches the event object).
        self._queue: List[tuple] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._cancelled_in_queue = 0
        self._cancels = 0
        self._compactions = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def events_scheduled(self) -> int:
        """Number of events ever scheduled (executed, pending or cancelled)."""
        return self._seq

    @property
    def events_cancelled(self) -> int:
        """Number of queued events that were cancelled over the run."""
        return self._cancels

    @property
    def pending(self) -> int:
        """Number of queued events, including (not yet reclaimed) cancelled
        husks.  Husks are compacted away whenever they outnumber live
        events on a non-trivial heap, so this stays within 2x the live
        event count (plus :data:`COMPACT_MIN_SIZE`)."""
        return len(self._queue)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled husks currently sitting in the queue."""
        return self._cancelled_in_queue

    @property
    def compactions(self) -> int:
        """How many times the heap has been compacted (husk reclamation)."""
        return self._compactions

    def _note_cancelled(self) -> None:
        """An event still in the queue was cancelled; maybe compact.

        Compaction preserves ``(time, priority, seq)`` order exactly:
        dropping entries and re-heapifying cannot reorder the remaining
        events because ordering is a total order on those keys.
        """
        cancelled = self._cancelled_in_queue + 1
        self._cancelled_in_queue = cancelled
        self._cancels += 1
        size = len(self._queue)
        if size >= self.COMPACT_MIN_SIZE and cancelled * 2 > size:
            self._compact()

    def _compact(self) -> None:
        live = [entry for entry in self._queue if not entry[3].cancelled]
        heapq.heapify(live)
        # In-place so that the list object's identity is stable: the run()
        # hot loop holds a local alias to the heap across callbacks.
        self._queue[:] = live
        self._cancelled_in_queue = 0
        self._compactions += 1

    def _pop(self) -> Event:
        """Pop the heap top, keeping the husk accounting consistent."""
        event = heapq.heappop(self._queue)[3]
        event._sched = None
        if event.cancelled:
            self._cancelled_in_queue -= 1
        return event

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation ``time``.

        ``priority`` breaks ties among same-time events (lower fires first).
        Raises :class:`SimulationError` if ``time`` is in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, fn, args)
        event._sched = self
        heapq.heappush(self._queue, (time, priority, seq, event))
        return event

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` seconds from now.

        Delays in ``[-NEGATIVE_DELAY_EPSILON, 0)`` -- float round-off from
        expressions like ``deadline - now`` -- are clamped to 0; anything
        more negative is a real bug and raises :class:`SimulationError`.
        """
        if delay < 0:
            if delay >= -self.NEGATIVE_DELAY_EPSILON:
                delay = 0.0
            else:
                raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or ``until`` is reached.

        Returns the final simulation time.  When ``until`` is given and the
        queue still holds later events, the clock is advanced exactly to
        ``until`` (events at ``t == until`` are executed).
        """
        if self._running:
            raise SimulationError("scheduler is already running (reentrant run())")
        self._running = True
        # Hot loop: the heap list is aliased locally (safe -- _compact
        # mutates it in place) and heappop is hoisted out of the loop.
        # Husk accounting from _pop() is inlined.
        queue = self._queue
        heappop = heapq.heappop
        try:
            if until is None:
                while queue:
                    event = heappop(queue)[3]
                    event._sched = None
                    if event.cancelled:
                        self._cancelled_in_queue -= 1
                        continue
                    self._now = event.time
                    self._events_processed += 1
                    event.fn(*event.args)
            else:
                while queue:
                    if queue[0][0] > until:
                        break
                    event = heappop(queue)[3]
                    event._sched = None
                    if event.cancelled:
                        self._cancelled_in_queue -= 1
                        continue
                    self._now = event.time
                    self._events_processed += 1
                    event.fn(*event.args)
                if until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Execute the single next non-cancelled event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        """
        while self._queue:
            event = self._pop()
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0][3].cancelled:
            self._pop()
        return self._queue[0][0] if self._queue else None
