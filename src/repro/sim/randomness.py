"""Named, independently seeded random substreams.

Each simulation component (mobility, MAC backoff, scheme jitter, traffic
arrivals, ...) draws from its own stream so that, e.g., changing the number
of backoff draws in the MAC does not perturb mobility trajectories.  This is
the standard variance-reduction discipline for simulation studies and is what
lets two schemes be compared on *identical* mobility traces.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of deterministic :class:`random.Random` substreams.

    Streams are keyed by name.  The substream seed is derived by hashing
    ``(master_seed, name)`` with SHA-256 so that stream identities are stable
    across Python versions and processes (unlike the built-in ``hash``).

    Example::

        streams = RandomStreams(seed=42)
        mobility_rng = streams.stream("mobility")
        mac_rng = streams.stream("mac/host-17")
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the (memoized) substream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(self.derive_seed(name))
            self._streams[name] = rng
        return rng

    def derive_seed(self, name: str) -> int:
        """Derive the integer seed used for substream ``name``."""
        digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, name: str) -> "RandomStreams":
        """Create a child factory whose streams are independent of this one.

        Useful for spawning per-replication stream sets:
        ``streams.fork("rep-3").stream("mobility")``.
        """
        return RandomStreams(self.derive_seed(f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={len(self._streams)})"
