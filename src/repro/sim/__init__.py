"""Discrete-event simulation engine.

The paper's evaluation used a custom C++ engine built around "processes
communicating through signals".  This package provides the equivalent in
Python:

- :class:`~repro.sim.engine.Scheduler` -- a heap-based event scheduler with
  deterministic total ordering of simultaneous events.
- :class:`~repro.sim.engine.Event` -- a cancellable scheduled callback.
- :class:`~repro.sim.process.Process` / :class:`~repro.sim.process.Signal` --
  an optional generator-based process layer mirroring the paper's
  process/signal abstraction.
- :class:`~repro.sim.randomness.RandomStreams` -- named, independently
  seeded random substreams so that component randomness is reproducible
  and decoupled.
"""

from repro.sim.engine import Event, Scheduler, SimulationError
from repro.sim.process import Process, Signal, Timeout, WaitSignal
from repro.sim.randomness import RandomStreams
from repro.sim.trace import NullTracer, RecordingTracer, Tracer

__all__ = [
    "Event",
    "Scheduler",
    "SimulationError",
    "Process",
    "Signal",
    "Timeout",
    "WaitSignal",
    "RandomStreams",
    "Tracer",
    "NullTracer",
    "RecordingTracer",
]
