"""Generator-based processes communicating through signals.

The paper describes its C++ engine as simulating "systems that can be modeled
by processes communicating through signals".  This module provides that
abstraction on top of :class:`repro.sim.engine.Scheduler`:

- A :class:`Process` wraps a generator.  The generator yields *wait
  conditions* and is resumed when they are satisfied.
- ``yield Timeout(delay)`` suspends for ``delay`` seconds.
- ``yield WaitSignal(sig)`` suspends until ``sig.emit(value)`` is called;
  the ``yield`` expression evaluates to ``value``.

Example::

    sched = Scheduler()
    ping = Signal("ping")

    def listener():
        value = yield WaitSignal(ping)
        print("got", value)

    def emitter():
        yield Timeout(1.0)
        ping.emit("hello")

    Process(sched, listener())
    Process(sched, emitter())
    sched.run()

The MAC and host state machines in this package use plain callbacks for
speed, but the process layer is part of the public API (and exercised by the
examples and tests) because it is the natural way to express higher-level
protocol experiments.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.sim.engine import Scheduler, SimulationError

__all__ = ["Process", "Signal", "Timeout", "WaitSignal"]


class Timeout:
    """Wait condition: resume after ``delay`` seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout {delay}")
        self.delay = delay


class WaitSignal:
    """Wait condition: resume when the signal is emitted."""

    __slots__ = ("signal",)

    def __init__(self, signal: "Signal") -> None:
        self.signal = signal


class Signal:
    """A broadcast rendezvous point between processes.

    ``emit(value)`` wakes every process currently waiting on the signal, in
    the order they started waiting.  Wakeups are delivered as zero-delay
    scheduled events (same timestamp, after the current event completes), so
    an emitter that waits on a reply signal immediately after emitting does
    not miss a synchronous response -- the classic lost-wakeup race.
    Processes that begin waiting at or after the emit see only subsequent
    emits.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: List["Process"] = []

    def emit(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            process._schedule_resume(value)
        return len(waiters)

    def _add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)

    def _remove_waiter(self, process: "Process") -> None:
        if process in self._waiters:
            self._waiters.remove(process)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class Process:
    """Drives a generator, suspending on yielded wait conditions.

    The process starts immediately at construction time (its body runs until
    the first ``yield`` as soon as the scheduler reaches the current event).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        body: Generator[Any, Any, Any],
        name: str = "",
    ) -> None:
        self._scheduler = scheduler
        self._body = body
        self.name = name
        self.finished = False
        self.result: Any = None
        self._waiting_on: Optional[Signal] = None
        self._pending_event = scheduler.schedule(0.0, self._resume, None)

    def interrupt(self) -> None:
        """Stop the process: close its generator and cancel pending waits."""
        if self.finished:
            return
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None
        self._body.close()
        self.finished = True

    def _schedule_resume(self, value: Any) -> None:
        self._waiting_on = None
        self._pending_event = self._scheduler.schedule(0.0, self._resume, value)

    def _resume(self, value: Any) -> None:
        self._pending_event = None
        self._waiting_on = None
        try:
            condition = self._body.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            return
        if isinstance(condition, Timeout):
            self._pending_event = self._scheduler.schedule(
                condition.delay, self._resume, None
            )
        elif isinstance(condition, WaitSignal):
            self._waiting_on = condition.signal
            condition.signal._add_waiter(self)
        else:
            self._body.close()
            self.finished = True
            raise SimulationError(
                f"process {self.name!r} yielded unsupported condition "
                f"{condition!r}; expected Timeout or WaitSignal"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"
