"""Kernel-mode selection: the scalar reference path vs the vectorized path.

The simulation kernel has two execution strategies that produce
**bit-identical** results:

- ``"scalar"`` -- the original pure-Python hot paths: per-host mobility
  queries behind per-instant memos, and a per-candidate Python loop (with
  the spatial-grid index) for each transmission's receiver scan.  This is
  the reference implementation; the golden determinism suite was captured
  against it.
- ``"vector"`` -- numpy-batched positions: all hosts' mobility is advanced
  in one batched call per position epoch by a
  :class:`repro.mobility.store.PositionStore`, and each transmission's
  receiver scan is a single vectorized distance mask over the position
  arrays.  Requires numpy and the built-in mobility models (a custom
  ``mobility_factory`` falls back to scalar -- its models may share RNG
  state across hosts, which batched advancement would reorder).

``"auto"`` (the default) picks ``"vector"`` whenever numpy is importable,
and falls back to ``"scalar"`` otherwise -- correctness never depends on
the choice, only throughput does.  The determinism suite runs both modes
explicitly, which is what makes the automatic default safe.

Selection precedence: an explicit ``kernel=`` argument (to
:class:`repro.net.network.Network` or
:func:`repro.experiments.runner.run_broadcast_simulation`) beats
:func:`set_kernel_mode`, which beats the ``REPRO_KERNEL`` environment
variable, which beats the ``"auto"`` default.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "KERNEL_MODES",
    "kernel_mode",
    "set_kernel_mode",
    "kernel_override",
    "resolve_kernel",
    "vector_supported",
]

KERNEL_MODES = ("auto", "scalar", "vector")

_mode: Optional[str] = None  # None -> read REPRO_KERNEL / default lazily


def _validated(mode: str) -> str:
    if mode not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {mode!r} (choose from "
            f"{', '.join(KERNEL_MODES)})"
        )
    return mode


def kernel_mode() -> str:
    """The process-wide kernel mode: ``auto``, ``scalar`` or ``vector``."""
    if _mode is not None:
        return _mode
    return _validated(os.environ.get("REPRO_KERNEL", "").strip() or "auto")


def set_kernel_mode(mode: str) -> str:
    """Set the process-wide kernel mode; returns the previous setting.

    Overrides ``REPRO_KERNEL``.  Only affects networks built afterwards.
    """
    global _mode
    previous = kernel_mode()
    _mode = _validated(mode)
    return previous


@contextmanager
def kernel_override(mode: str) -> Iterator[str]:
    """Temporarily force the kernel mode (tests / benchmarks)."""
    global _mode
    saved = _mode
    _mode = _validated(mode)
    try:
        yield _mode
    finally:
        _mode = saved


def vector_supported() -> bool:
    """Whether the vector kernel can run in this interpreter (numpy)."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - image always ships numpy
        return False
    return True


def resolve_kernel(mode: Optional[str] = None) -> str:
    """Resolve a requested mode (or the process default) to scalar/vector.

    ``"auto"`` resolves to ``"vector"`` when numpy is available, else
    ``"scalar"``.  An explicit ``"vector"`` request raises if numpy is
    missing -- silently degrading an explicit request would make a
    determinism comparison vacuously pass.
    """
    requested = _validated(mode) if mode is not None else kernel_mode()
    if requested == "auto":
        return "vector" if vector_supported() else "scalar"
    if requested == "vector" and not vector_supported():
        raise RuntimeError(
            "kernel mode 'vector' requested but numpy is not importable"
        )
    return requested
