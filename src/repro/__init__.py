"""Reproduction of Tseng, Ni & Shih, "Adaptive Approaches to Relieving
Broadcast Storms in a Wireless Multihop Mobile Ad Hoc Network"
(ICDCS 2001 / IEEE Transactions on Computers, May 2003).

The package is organized bottom-up:

- :mod:`repro.sim` -- discrete-event simulation engine.
- :mod:`repro.geometry` -- circle-coverage mathematics.
- :mod:`repro.analysis` -- the paper's Section 2.2 analytical models
  (expected additional coverage, contention-free probabilities).
- :mod:`repro.mobility` -- the random-direction roaming model and friends.
- :mod:`repro.phy` -- DSSS physical-layer timing and the radio channel
  with receiver-side collision modelling.
- :mod:`repro.mac` -- IEEE 802.11-like CSMA/CA DCF for broadcast frames.
- :mod:`repro.net` -- packets, mobile hosts, neighbor discovery (HELLO),
  dynamic hello intervals and network-wide connectivity snapshots.
- :mod:`repro.schemes` -- the broadcast-scheme plugin registry and the
  schemes themselves: flooding, fixed counter/distance/location
  thresholds, the paper's contributions (adaptive counter, adaptive
  location, neighbor coverage) and a literature zoo (gossip, adaptive
  gossip, counter+gossip hybrid, self-pruning).
- :mod:`repro.metrics` -- RE / SRB / latency collection.
- :mod:`repro.faults` -- fault injection: host crash/recover churn,
  bursty (Gilbert-Elliott) link loss, HELLO suppression, and the
  graceful-degradation metrics that go with them.
- :mod:`repro.experiments` -- scenario builders and runners for every
  figure in the paper's evaluation.

Quickstart::

    from repro import run_broadcast_simulation, ScenarioConfig

    config = ScenarioConfig(map_units=5, scheme="adaptive-counter",
                            num_broadcasts=50, seed=7)
    result = run_broadcast_simulation(config)
    print(result.summary())
"""

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import (
    SimulationResult,
    run_broadcast_batch,
    run_broadcast_simulation,
)
from repro.faults import FaultInjector, FaultPlan
from repro.kernel import kernel_override, resolve_kernel, set_kernel_mode
from repro.metrics.collector import BroadcastRecord, MetricsCollector
from repro.schemes import (
    SCHEME_REGISTRY,
    ParamSpec,
    SchemeSpec,
    get_spec,
    make_scheme,
    register_scheme,
)

__version__ = "1.0.0"

__all__ = [
    "ScenarioConfig",
    "SimulationResult",
    "run_broadcast_simulation",
    "run_broadcast_batch",
    "kernel_override",
    "resolve_kernel",
    "set_kernel_mode",
    "BroadcastRecord",
    "MetricsCollector",
    "FaultPlan",
    "FaultInjector",
    "SCHEME_REGISTRY",
    "SchemeSpec",
    "ParamSpec",
    "register_scheme",
    "get_spec",
    "make_scheme",
    "__version__",
]
