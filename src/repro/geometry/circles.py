"""Two-circle intersection area and the paper's additional-coverage formulas.

Section 2.2.1 of the paper defines, for two circles of equal radius *r*
whose centers are distance *d* apart::

    INTC(d) = 4 * integral_{d/2}^{r} sqrt(r^2 - x^2) dx

This has the closed form (the classic symmetric-lens area)::

    INTC(d) = 2 r^2 arccos(d / 2r) - (d / 2) sqrt(4 r^2 - d^2)

The *additional coverage* of a rebroadcast by a host at distance ``d`` from
the transmitter it heard is ``pi r^2 - INTC(d)``; it peaks at ``d = r`` where
it equals ``~0.61 pi r^2`` (the paper's 61 % bound).
"""

from __future__ import annotations

import math

__all__ = [
    "lens_area",
    "intc",
    "intc_integrand_form",
    "additional_coverage_area",
    "additional_coverage_fraction",
]


def lens_area(r: float, d: float) -> float:
    """Intersection area of two circles of radius ``r`` centers ``d`` apart.

    Returns ``pi r^2`` for ``d <= 0`` (coincident) and ``0`` for ``d >= 2r``
    (disjoint).
    """
    if r <= 0:
        raise ValueError(f"radius must be positive, got {r}")
    if d < 0:
        raise ValueError(f"distance must be non-negative, got {d}")
    if d == 0:
        return math.pi * r * r
    if d >= 2 * r:
        return 0.0
    half = d / (2.0 * r)
    return 2.0 * r * r * math.acos(half) - (d / 2.0) * math.sqrt(
        4.0 * r * r - d * d
    )


def intc(d: float, r: float = 1.0) -> float:
    """The paper's ``INTC(d)``: alias of :func:`lens_area` with paper arg order."""
    return lens_area(r, d)


def intc_integrand_form(d: float, r: float = 1.0, steps: int = 20000) -> float:
    """``INTC(d)`` evaluated directly from the paper's integral definition.

    Numerically integrates ``4 * int_{d/2}^r sqrt(r^2 - x^2) dx`` with the
    midpoint rule.  Exists to cross-check :func:`lens_area` in tests.
    """
    if d >= 2 * r:
        return 0.0
    lo = d / 2.0
    hi = r
    width = (hi - lo) / steps
    total = 0.0
    for i in range(steps):
        x = lo + (i + 0.5) * width
        total += math.sqrt(max(r * r - x * x, 0.0))
    return 4.0 * total * width


def additional_coverage_area(d: float, r: float = 1.0) -> float:
    """Area newly covered by a rebroadcast at distance ``d`` from the sender.

    ``pi r^2 - INTC(d)``, clamped into ``[0, pi r^2]``.
    """
    area = math.pi * r * r - lens_area(r, min(d, 2 * r))
    return max(0.0, area)


def additional_coverage_fraction(d: float, r: float = 1.0) -> float:
    """:func:`additional_coverage_area` normalized by ``pi r^2`` (in [0, 1])."""
    return additional_coverage_area(d, r) / (math.pi * r * r)
