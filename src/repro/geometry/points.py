"""Euclidean points in the plane.

Positions are plain ``(x, y)`` tuples throughout the simulator for speed;
:class:`Point` is a NamedTuple so it *is* such a tuple while still offering
named access and vector helpers.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Tuple

__all__ = ["Point", "distance", "distance_sq"]


class Point(NamedTuple):
    """An (x, y) position in meters."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        """This point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def towards(self, other: "Point", fraction: float) -> "Point":
        """The point ``fraction`` of the way from here to ``other``."""
        return Point(
            self.x + (other.x - self.x) * fraction,
            self.y + (other.y - self.y) * fraction,
        )


def distance_sq(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Squared Euclidean distance (avoids the sqrt in range tests)."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return dx * dx + dy * dy


def distance(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Euclidean distance in meters."""
    return math.sqrt(distance_sq(a, b))
