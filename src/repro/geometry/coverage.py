"""Multi-circle coverage estimation.

The location-based schemes need, for a host ``x`` that has heard the same
broadcast from transmitters at positions ``q_1 .. q_k``, the fraction of
``x``'s own radio disk **not** covered by any of the ``q_i`` disks -- the
additional coverage ``ac`` of Section 3.2.  There is no simple closed form
for k >= 2 overlapping circles, so we estimate it over a deterministic set of
sample points (a Fibonacci-spiral disk lattice, which is near-uniform and,
being deterministic, keeps simulations replayable).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

__all__ = ["DiskSampler", "uncovered_fraction"]

_GOLDEN_ANGLE = math.pi * (3.0 - math.sqrt(5.0))


class DiskSampler:
    """Deterministic near-uniform sample points inside a unit disk.

    Points follow the Fibonacci (sunflower) spiral: point *i* of *N* sits at
    radius ``sqrt((i + 0.5) / N)`` and angle ``i * golden_angle``.  The
    lattice is precomputed once and reused for every coverage query, so a
    query is ``O(N * k)`` with no allocation beyond the result.
    """

    def __init__(self, num_points: int = 256) -> None:
        if num_points <= 0:
            raise ValueError(f"num_points must be positive, got {num_points}")
        self.num_points = num_points
        self._points: List[Tuple[float, float]] = []
        for i in range(num_points):
            radius = math.sqrt((i + 0.5) / num_points)
            theta = i * _GOLDEN_ANGLE
            self._points.append((radius * math.cos(theta), radius * math.sin(theta)))

    def points(
        self, center: Tuple[float, float], radius: float
    ) -> List[Tuple[float, float]]:
        """The lattice scaled to a disk of ``radius`` at ``center``."""
        cx, cy = center
        return [(cx + px * radius, cy + py * radius) for px, py in self._points]

    def uncovered_fraction(
        self,
        center: Tuple[float, float],
        radius: float,
        covering_centers: Iterable[Tuple[float, float]],
        covering_radius: float,
    ) -> float:
        """Fraction of the disk at ``center`` not covered by any covering disk.

        This is the location-scheme ``ac`` value: 1.0 when nothing covers the
        host's disk, 0.0 when the heard transmitters jointly blanket it.
        """
        centers = list(covering_centers)
        if not centers:
            return 1.0
        cx, cy = center
        rr = covering_radius * covering_radius
        uncovered = 0
        for px, py in self._points:
            sx = cx + px * radius
            sy = cy + py * radius
            for qx, qy in centers:
                dx = sx - qx
                dy = sy - qy
                if dx * dx + dy * dy <= rr:
                    break
            else:
                uncovered += 1
        return uncovered / self.num_points


_DEFAULT_SAMPLER = DiskSampler(256)


def uncovered_fraction(
    center: Tuple[float, float],
    radius: float,
    covering_centers: Sequence[Tuple[float, float]],
    covering_radius: float,
) -> float:
    """Module-level convenience using a shared 256-point sampler."""
    return _DEFAULT_SAMPLER.uncovered_fraction(
        center, radius, covering_centers, covering_radius
    )
