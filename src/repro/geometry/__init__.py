"""Geometry and circle-coverage mathematics.

Everything the broadcast-storm analysis needs: Euclidean points, the
two-circle intersection ("lens") area ``INTC(d)`` from Section 2.2.1 of the
paper, and estimators for the *additional coverage* a rebroadcast provides
(the area of a host's radio disk not already covered by previously heard
transmitters).
"""

from repro.geometry.circles import (
    additional_coverage_area,
    additional_coverage_fraction,
    intc,
    intc_integrand_form,
    lens_area,
)
from repro.geometry.coverage import DiskSampler, uncovered_fraction
from repro.geometry.points import Point, distance, distance_sq

__all__ = [
    "Point",
    "distance",
    "distance_sq",
    "intc",
    "intc_integrand_form",
    "lens_area",
    "additional_coverage_area",
    "additional_coverage_fraction",
    "DiskSampler",
    "uncovered_fraction",
]
